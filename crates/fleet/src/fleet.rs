//! The tenant slab and its drive loop.
//!
//! A [`Fleet`] owns one serial [`Monitor`] per tenant in a slab indexed by
//! [`TenantId`]. Every [`Fleet::push_tagged`] call runs three phases:
//!
//! 1. **Demux** — one pass over the tagged window's maximal tenant runs,
//!    copying each run into its tenant's scratch batch as ranged column
//!    copies. The packets were decoded and key-derived exactly once
//!    upstream; demux never touches packet contents.
//! 2. **Tenant-affine processing** — the slab is split into contiguous
//!    chunks, one per worker; each worker drives its tenants' monitors
//!    sequentially. A tenant belongs to the same worker for the fleet's
//!    lifetime, and its monitor is serial, so the per-tenant computation
//!    is identical at any fleet thread count.
//! 3. **Ordered delivery** — bins closed during the parallel phase are
//!    buffered per tenant and handed to the [`FleetSink`] in (tenant,
//!    bin index) order on the calling thread.
//!
//! The combination makes the whole fleet a pure function of its
//! configuration and the tagged stream: reports are bit-identical to N
//! standalone monitors driven from the per-tenant streams, at threads 1,
//! 2, 4 or anything else — the `fleet_conformance` suite pins exactly
//! that.

use flowrank_monitor::{BinReport, Monitor, MonitorBuilder, ReportSink};
use flowrank_net::{PacketBatch, TaggedBatch, TenantId};

use crate::source::FleetSource;

/// Salt separating per-tenant monitor-seed derivation from every other
/// consumer of the fleet seed (the trace-side tenant salt included).
const FLEET_MONITOR_SALT: u64 = 0xF1EE_5EED_0000_0009;

/// splitmix64 finaliser: full-avalanche mixing for tenant seed derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Receives each tenant's closed bins, in (tenant, bin index) order.
///
/// The fleet-level analogue of [`ReportSink`]: the borrow is only valid
/// inside the call, and within one [`Fleet::push_tagged`] the sink sees
/// tenants in ascending id order, each tenant's bins in closing order.
pub trait FleetSink {
    /// Accepts one closed bin of one tenant.
    fn accept(&mut self, tenant: TenantId, report: &BinReport);
}

impl<S: FleetSink + ?Sized> FleetSink for &mut S {
    fn accept(&mut self, tenant: TenantId, report: &BinReport) {
        (**self).accept(tenant, report)
    }
}

/// A [`FleetSink`] that owns every report it is offered — the fleet-level
/// `Collect`, used by tests and small drives.
#[derive(Debug, Default)]
pub struct FleetCollect {
    /// Collected `(tenant, report)` pairs in delivery order.
    pub reports: Vec<(TenantId, BinReport)>,
}

impl FleetCollect {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected reports of one tenant, in bin order.
    pub fn tenant_reports(&self, tenant: TenantId) -> Vec<&BinReport> {
        self.reports
            .iter()
            .filter(|(t, _)| *t == tenant)
            .map(|(_, r)| r)
            .collect()
    }
}

impl FleetSink for FleetCollect {
    fn accept(&mut self, tenant: TenantId, report: &BinReport) {
        self.reports.push((tenant, report.clone()));
    }
}

/// What went wrong with a tagged push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The tagged batch referenced a tenant id outside the slab.
    UnknownTenant {
        /// The offending tenant id.
        tenant: u32,
        /// Number of tenants the fleet hosts (valid ids are `0..tenants`).
        tenants: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownTenant { tenant, tenants } => write!(
                f,
                "unknown tenant{tenant}: fleet hosts tenants 0..{tenants}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Lifetime statistics of one tenant slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Packets demultiplexed to the tenant.
    pub packets: u64,
    /// Bins the tenant's monitor closed.
    pub reports: u64,
    /// Flow-table entries the tenant's budget evicted, summed over bins.
    pub evictions: u64,
}

/// Aggregate outcome of one [`Fleet::drive`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetSummary {
    /// Tenants hosted.
    pub tenants: usize,
    /// Tagged windows consumed from the source.
    pub windows: u64,
    /// Packets demultiplexed across all tenants.
    pub packets: u64,
    /// Bins delivered across all tenants.
    pub reports: u64,
    /// Budget evictions across all tenants.
    pub evictions: u64,
}

/// One tenant's slot in the slab: its monitor, its demux scratch batch and
/// its report buffer for the parallel phase.
#[derive(Debug)]
struct TenantSlot {
    tenant: TenantId,
    monitor: Monitor,
    /// This tenant's slice of the current window (demux target).
    batch: PacketBatch,
    /// Bins closed during the parallel phase, awaiting ordered delivery.
    pending: Vec<BinReport>,
    stats: TenantStats,
}

/// Buffers closed bins during the parallel phase (reports must not cross
/// worker threads unordered — they are delivered later in tenant order).
struct BufSink<'a>(&'a mut Vec<BinReport>);

impl ReportSink for BufSink<'_> {
    fn accept(&mut self, report: &BinReport) {
        self.0.push(report.clone());
    }
}

impl TenantSlot {
    /// Drives the slot's monitor over its demuxed slice of the current
    /// window. Runs on exactly one worker per fleet lifetime.
    fn process(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.packets += self.batch.len() as u64;
        let mut sink = BufSink(&mut self.pending);
        self.monitor.push_batch_into(&self.batch, &mut sink);
    }

    /// Delivers the slot's buffered bins to `sink` and folds their
    /// statistics. Runs on the calling thread, in tenant order.
    fn deliver<S: FleetSink + ?Sized>(&mut self, sink: &mut S) {
        for report in self.pending.drain(..) {
            self.stats.reports += 1;
            self.stats.evictions += report.evictions;
            sink.accept(self.tenant, &report);
        }
    }
}

/// Fluent builder for [`Fleet`].
///
/// ```
/// use flowrank_fleet::FleetBuilder;
/// use flowrank_monitor::{MonitorBuilder, SamplerSpec};
///
/// let fleet = FleetBuilder::new(100)
///     .monitor(MonitorBuilder::new().sampler(SamplerSpec::Random { rate: 0.1 }))
///     .threads(4)
///     .flow_budget(256)
///     .build();
/// assert_eq!(fleet.tenant_count(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    tenants: u32,
    template: MonitorBuilder,
    seed: u64,
    threads: usize,
    flow_budget: Option<usize>,
}

impl FleetBuilder {
    /// A fleet of `tenants` monitors (at least 1) built from the default
    /// monitor template.
    pub fn new(tenants: u32) -> Self {
        FleetBuilder {
            tenants: tenants.max(1),
            template: MonitorBuilder::new(),
            seed: 0xF1EE_2026,
            threads: 1,
            flow_budget: None,
        }
    }

    /// The monitor template every tenant is built from. Tenant monitors
    /// are always serial — the fleet provides the parallelism — so any
    /// `threads` setting on the template is overridden to 1.
    pub fn monitor(mut self, template: MonitorBuilder) -> Self {
        self.template = template;
        self
    }

    /// Fleet master seed: each tenant's monitor seed is derived from it
    /// (splitmix64 over the fleet salt and the tenant id), so tenants
    /// sample independently while the whole fleet stays a pure function
    /// of one seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fleet-level worker threads. Tenants are partitioned into contiguous
    /// slab chunks, one per worker; reports are bit-identical at any
    /// setting (tenant-affine routing keeps each tenant's computation
    /// sequential on one worker).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Per-tenant flow-table budget: each tenant's monitor sheds its
    /// coldest flow-table entries back to this cap (space-saving-style,
    /// recorded on [`BinReport::evictions`]), bounding fleet memory by
    /// `tenants × budget` instead of by traffic.
    pub fn flow_budget(mut self, budget: usize) -> Self {
        self.flow_budget = Some(budget.max(1));
        self
    }

    /// The exact builder a standalone monitor for `tenant` would use —
    /// template plus derived seed, serial, budget applied. The
    /// fleet-vs-standalone conformance suite drives monitors built from
    /// this against the fleet and requires bit-identical reports.
    pub fn tenant_builder(&self, tenant: TenantId) -> MonitorBuilder {
        let seed = splitmix64(self.seed ^ FLEET_MONITOR_SALT ^ u64::from(tenant.0));
        let mut builder = self.template.clone().seed(seed).threads(1);
        if let Some(budget) = self.flow_budget {
            builder = builder.flow_budget(budget);
        }
        builder
    }

    /// Builds the slab.
    pub fn build(self) -> Fleet {
        let slots = (0..self.tenants)
            .map(|t| {
                let tenant = TenantId(t);
                TenantSlot {
                    tenant,
                    monitor: self.tenant_builder(tenant).build(),
                    batch: PacketBatch::new(),
                    pending: Vec::new(),
                    stats: TenantStats {
                        tenant,
                        ..TenantStats::default()
                    },
                }
            })
            .collect();
        Fleet {
            slots,
            threads: self.threads,
            windows: 0,
        }
    }
}

/// N tenant monitors behind one slab: one decode pass, tenant-affine
/// workers, deterministic delivery. Built by [`FleetBuilder`].
#[derive(Debug)]
pub struct Fleet {
    slots: Vec<TenantSlot>,
    threads: usize,
    windows: u64,
}

impl Fleet {
    /// Starts a builder for a fleet of `tenants` monitors.
    pub fn builder(tenants: u32) -> FleetBuilder {
        FleetBuilder::new(tenants)
    }

    /// Number of tenants hosted.
    pub fn tenant_count(&self) -> usize {
        self.slots.len()
    }

    /// Fleet-level worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tagged windows pushed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// One tenant's monitor (read-only; the fleet owns all mutation).
    pub fn monitor(&self, tenant: TenantId) -> Option<&Monitor> {
        self.slots.get(tenant.index()).map(|slot| &slot.monitor)
    }

    /// Lifetime statistics per tenant, in tenant order.
    pub fn tenant_stats(&self) -> impl Iterator<Item = TenantStats> + '_ {
        self.slots.iter().map(|slot| slot.stats)
    }

    /// Observes one tenant-tagged window: demux by tenant runs, process
    /// tenant-affine (in parallel with [`FleetBuilder::threads`] workers),
    /// deliver closed bins in (tenant, bin) order. Panics on a tenant id
    /// outside the slab — [`Fleet::try_push_tagged`] surfaces it instead.
    pub fn push_tagged<S: FleetSink + ?Sized>(&mut self, tagged: &TaggedBatch, sink: &mut S) {
        if let Err(error) = self.try_push_tagged(tagged, sink) {
            panic!("{error}");
        }
    }

    /// Fallible form of [`Fleet::push_tagged`] for live feeds, where the
    /// tenant tag comes from untrusted records: an unknown tenant id
    /// rejects the whole window before any tenant observes a packet, so
    /// the fleet state stays consistent.
    pub fn try_push_tagged<S: FleetSink + ?Sized>(
        &mut self,
        tagged: &TaggedBatch,
        sink: &mut S,
    ) -> Result<(), FleetError> {
        let tenants = self.slots.len();
        if let Some(bad) = tagged
            .tenants()
            .iter()
            .find(|tenant| tenant.index() >= tenants)
        {
            return Err(FleetError::UnknownTenant {
                tenant: bad.0,
                tenants,
            });
        }
        self.windows += 1;
        // Phase 1: demux — ranged column copies per maximal tenant run.
        for slot in &mut self.slots {
            slot.batch.clear();
        }
        for (tenant, range) in tagged.runs() {
            self.slots[tenant.index()]
                .batch
                .extend_from_batch(tagged.batch(), range);
        }
        // Phase 2: tenant-affine processing across the worker chunks.
        self.process_slots();
        // Phase 3: ordered delivery on the calling thread.
        for slot in &mut self.slots {
            slot.deliver(sink);
        }
        Ok(())
    }

    /// Runs every slot's pending slice, splitting the slab into contiguous
    /// per-worker chunks when the fleet is multi-threaded. The partition
    /// only moves work between threads: each tenant is processed serially
    /// by exactly one worker either way.
    fn process_slots(&mut self) {
        let workers = self.threads.min(self.slots.len()).max(1);
        if workers == 1 {
            for slot in &mut self.slots {
                slot.process();
            }
            return;
        }
        let chunk = self.slots.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for worker_slots in self.slots.chunks_mut(chunk) {
                scope.spawn(move || {
                    for slot in worker_slots {
                        slot.process();
                    }
                });
            }
        });
    }

    /// Closes every tenant's final bin, delivering the last reports in
    /// tenant order. Idempotent like [`Monitor::finish`].
    pub fn finish<S: FleetSink + ?Sized>(&mut self, sink: &mut S) {
        for slot in &mut self.slots {
            let mut buffer = BufSink(&mut slot.pending);
            slot.monitor.finish_into(&mut buffer);
            slot.deliver(sink);
        }
    }

    /// Pulls `source` to exhaustion through [`Fleet::push_tagged`], then
    /// [`Fleet::finish`]es, returning the aggregate summary.
    pub fn drive<S, K>(&mut self, source: &mut S, sink: &mut K) -> FleetSummary
    where
        S: FleetSource + ?Sized,
        K: FleetSink + ?Sized,
    {
        let windows_before = self.windows;
        while let Some(batch) = source.next_tagged() {
            self.push_tagged(batch, sink);
        }
        self.finish(sink);
        let mut summary = FleetSummary {
            tenants: self.slots.len(),
            windows: self.windows - windows_before,
            ..FleetSummary::default()
        };
        for stats in self.tenant_stats() {
            summary.packets += stats.packets;
            summary.reports += stats.reports;
            summary.evictions += stats.evictions;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_monitor::SamplerSpec;
    use flowrank_trace::FleetScenario;

    fn template() -> MonitorBuilder {
        MonitorBuilder::new()
            .sampler(SamplerSpec::Random { rate: 0.2 })
            .runs(2)
    }

    fn fleet_reports(scenario: &FleetScenario, seed: u64, threads: usize) -> FleetCollect {
        let mut fleet = FleetBuilder::new(scenario.tenants)
            .monitor(template())
            .seed(seed)
            .threads(threads)
            .build();
        let mut sink = FleetCollect::new();
        let summary = fleet.drive(&mut scenario.stream(seed), &mut sink);
        assert_eq!(summary.tenants, scenario.tenants as usize);
        assert!(summary.packets > 0);
        sink
    }

    #[test]
    fn fleet_matches_standalone_monitors_bit_for_bit() {
        let scenario = FleetScenario::new(4);
        let seed = 0xF1EE;
        let fleet = fleet_reports(&scenario, seed, 1);
        let builder = FleetBuilder::new(scenario.tenants)
            .monitor(template())
            .seed(seed);
        for t in 0..scenario.tenants {
            let tenant = TenantId(t);
            let mut standalone = builder.tenant_builder(tenant).build();
            let mut stream = scenario.tenant_stream(seed, tenant);
            let mut reports = Vec::new();
            while let Some(batch) = stream.next_window() {
                reports.extend(standalone.push_batch(batch));
            }
            reports.extend(standalone.finish());
            let fleet_side = fleet.tenant_reports(tenant);
            assert_eq!(fleet_side.len(), reports.len(), "tenant {t} bin count");
            for (ours, theirs) in fleet_side.iter().zip(&reports) {
                assert_eq!(*ours, theirs, "tenant {t} report");
            }
        }
    }

    #[test]
    fn fleet_reports_are_thread_count_invariant_and_ordered() {
        let scenario = FleetScenario::new(5);
        let seed = 99;
        let one = fleet_reports(&scenario, seed, 1);
        let two = fleet_reports(&scenario, seed, 2);
        let four = fleet_reports(&scenario, seed, 4);
        assert_eq!(one.reports, two.reports);
        assert_eq!(one.reports, four.reports);
        // Delivery order is (tenant, bin) within each push; bins per
        // tenant must be strictly increasing overall.
        for t in 0..scenario.tenants {
            let bins: Vec<u64> = one
                .tenant_reports(TenantId(t))
                .iter()
                .map(|r| r.bin_index)
                .collect();
            assert!(bins.windows(2).all(|w| w[0] < w[1]), "tenant {t}: {bins:?}");
        }
    }

    #[test]
    fn budget_bounds_flow_tables_and_reports_evictions() {
        let scenario = FleetScenario {
            tenants: 2,
            aggregate_scale: 1.0,
            diurnal_depth: 0.0,
            phase_groups: 1,
        };
        let budget = 8;
        let mut fleet = FleetBuilder::new(scenario.tenants)
            .monitor(template())
            .seed(3)
            .flow_budget(budget)
            .build();
        let mut sink = FleetCollect::new();
        let summary = fleet.drive(&mut scenario.stream(3), &mut sink);
        assert!(summary.evictions > 0, "budget must engage: {summary:?}");
        for (tenant, _) in &sink.reports {
            let monitor = fleet.monitor(*tenant).expect("hosted tenant");
            assert_eq!(monitor.flow_budget(), Some(budget));
        }
        // Eviction trail is deterministic.
        let mut fleet2 = FleetBuilder::new(scenario.tenants)
            .monitor(template())
            .seed(3)
            .flow_budget(budget)
            .build();
        let mut sink2 = FleetCollect::new();
        let summary2 = fleet2.drive(&mut scenario.stream(3), &mut sink2);
        assert_eq!(summary, summary2);
        assert_eq!(sink.reports, sink2.reports);
    }

    #[test]
    fn unknown_tenants_are_rejected_before_any_observation() {
        let mut fleet = FleetBuilder::new(2).monitor(template()).build();
        let mut tagged = TaggedBatch::new();
        tagged.push_columns(TenantId(0), 10, 1, 64, None);
        tagged.push_columns(TenantId(7), 20, 2, 64, None);
        let mut sink = FleetCollect::new();
        let error = fleet
            .try_push_tagged(&tagged, &mut sink)
            .expect_err("tenant 7 is not hosted");
        assert_eq!(
            error,
            FleetError::UnknownTenant {
                tenant: 7,
                tenants: 2
            }
        );
        assert!(error.to_string().contains("tenant7"));
        // Tenant 0 must not have observed its packet.
        assert_eq!(fleet.tenant_stats().map(|s| s.packets).sum::<u64>(), 0);
        assert_eq!(fleet.windows(), 0);
    }

    #[test]
    fn queue_source_and_scenario_stream_agree() {
        // Feeding the same windows through a TaggedQueue must reproduce
        // the scenario-stream drive exactly (the serve record path).
        let scenario = FleetScenario::new(3);
        let seed = 11;
        let direct = fleet_reports(&scenario, seed, 2);
        let mut queue = crate::TaggedQueue::new();
        let mut stream = scenario.stream(seed);
        while let Some(batch) = stream.next_window() {
            queue.push(batch.clone());
        }
        let mut fleet = FleetBuilder::new(scenario.tenants)
            .monitor(template())
            .seed(seed)
            .threads(2)
            .build();
        let mut sink = FleetCollect::new();
        fleet.drive(&mut queue, &mut sink);
        assert_eq!(sink.reports, direct.reports);
    }
}

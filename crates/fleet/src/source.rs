//! Where tenant-tagged windows come from.
//!
//! A [`FleetSource`] is the fleet-level analogue of the monitor's
//! `PacketSource`: it yields [`TaggedBatch`]es — packets decoded and
//! key-derived exactly once, each carrying its tenant tag — until the
//! stream ends. [`Fleet::drive`](crate::Fleet::drive) pulls a source to
//! exhaustion.
//!
//! Two implementations ship here:
//!
//! * [`FleetStream`] (from `flowrank-trace`) — the synthetic fleet
//!   scenario: per-tenant catalog workloads merged window by window.
//! * [`TaggedQueue`] — an owned FIFO of tagged batches, the adapter
//!   between a live record feed (e.g. tenant-tagged ndjson in
//!   `flowrank-serve`) and a fleet drive.

use std::collections::VecDeque;

use flowrank_net::TaggedBatch;
use flowrank_trace::FleetStream;

/// A pull-based stream of tenant-tagged packet windows.
///
/// The contract mirrors the monitor's packet sources: within one tenant,
/// timestamps are non-decreasing across successive windows (each tenant's
/// monitor enforces its own timestamp policy); the borrow returned by
/// [`FleetSource::next_tagged`] is only valid until the next call.
pub trait FleetSource {
    /// The next tenant-tagged window, or `None` when the stream has ended.
    fn next_tagged(&mut self) -> Option<&TaggedBatch>;
}

impl FleetSource for FleetStream {
    fn next_tagged(&mut self) -> Option<&TaggedBatch> {
        self.next_window()
    }
}

impl<S: FleetSource + ?Sized> FleetSource for &mut S {
    fn next_tagged(&mut self) -> Option<&TaggedBatch> {
        (**self).next_tagged()
    }
}

/// An owned FIFO of tagged batches: push windows in, drive the fleet out.
///
/// This is the record-path adapter: a feed that parses tenant-tagged
/// records (one decode pass) accumulates them into a [`TaggedBatch`],
/// queues the batch here, and the fleet consumes the queue as a
/// [`FleetSource`]. Draining is destructive — each window is yielded once.
#[derive(Debug, Default)]
pub struct TaggedQueue {
    queue: VecDeque<TaggedBatch>,
    /// The window most recently yielded, kept alive for the borrow.
    current: TaggedBatch,
}

impl TaggedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one tagged window to the back of the queue. Empty batches
    /// are dropped (the fleet never sees empty windows).
    pub fn push(&mut self, batch: TaggedBatch) {
        if !batch.is_empty() {
            self.queue.push_back(batch);
        }
    }

    /// Windows waiting to be consumed.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no windows are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl FleetSource for TaggedQueue {
    fn next_tagged(&mut self) -> Option<&TaggedBatch> {
        self.current = self.queue.pop_front()?;
        Some(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_net::TenantId;

    fn window(tenant: u32, packets: usize) -> TaggedBatch {
        let mut batch = TaggedBatch::new();
        for i in 0..packets {
            batch.push_columns(TenantId(tenant), i as u64, 1, 64, None);
        }
        batch
    }

    #[test]
    fn queue_yields_windows_in_fifo_order_and_drops_empties() {
        let mut queue = TaggedQueue::new();
        queue.push(window(0, 2));
        queue.push(TaggedBatch::new());
        queue.push(window(1, 3));
        assert_eq!(queue.len(), 2);
        let first = queue.next_tagged().expect("first window").len();
        assert_eq!(first, 2);
        let second = queue.next_tagged().expect("second window").len();
        assert_eq!(second, 3);
        assert!(queue.next_tagged().is_none());
        assert!(queue.is_empty());
    }

    #[test]
    fn fleet_stream_is_a_fleet_source() {
        let scenario = flowrank_trace::FleetScenario::new(2);
        let mut stream = scenario.stream(7);
        let source: &mut dyn FleetSource = &mut stream;
        let mut windows = 0;
        let mut packets = 0;
        while let Some(batch) = source.next_tagged() {
            windows += 1;
            packets += batch.len();
        }
        assert!(windows > 0 && packets > 0);
    }
}

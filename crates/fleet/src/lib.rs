//! # flowrank-fleet
//!
//! The multi-tenant fleet layer: thousands of monitors, one process, one
//! decode pass.
//!
//! A provider running the paper's monitor does not run it once — it runs it
//! per customer link, and the links are small. Giving every tenant its own
//! process (or its own packet-decode loop) spends the fixed costs N times.
//! This crate hosts N independent [`Monitor`](flowrank_monitor::Monitor)s
//! behind one slab and drives them from **tenant-tagged batches**: the
//! packet stream is decoded and key-derived exactly once upstream (by trace
//! synthesis or by the record parser), tagged with a compact
//! [`TenantId`](flowrank_net::TenantId), and demultiplexed here with ranged
//! column copies — never re-parsed per tenant.
//!
//! ```text
//!                        one decode / key-derivation pass
//!   records ──────────▶ TaggedBatch ─ tenant runs ──┐
//!                                                   │ ranged column copies
//!            ┌──────────────────────────────────────┘
//!            ▼
//!   ┌─ tenant slab ────────────────────────────────┐
//!   │ slot 0: Monitor ─┐                           │   worker 0: slots 0..k
//!   │ slot 1: Monitor ─┼─ tenant-affine workers ─┐ │   worker 1: slots k..2k
//!   │   ⋮              │                         │ │      ⋮  (tenant never
//!   │ slot N: Monitor ─┘                         │ │       changes worker)
//!   └────────────────────────────────────────────┼─┘
//!                                                ▼
//!                     reports in (tenant, bin) order ──▶ FleetSink
//! ```
//!
//! Three contracts make the fleet more than a `Vec<Monitor>`:
//!
//! * **Bit-identical to standalone.** Each tenant's monitor sees exactly
//!   the packet sequence a standalone monitor would see, in the same chunk
//!   order, processed by exactly one worker — so fleet reports are
//!   bit-identical to N independently driven monitors at *any* fleet
//!   thread count (pinned by the `fleet_conformance` suite).
//! * **Deterministic delivery.** Closed bins reach the [`FleetSink`] in
//!   (tenant, bin index) order after every push, regardless of which
//!   worker closed them.
//! * **Bounded memory.** A per-tenant flow budget (space-saving-style
//!   eviction of the coldest flow-table entries, recorded on
//!   [`BinReport::evictions`](flowrank_monitor::BinReport)) keeps the
//!   fleet's footprint proportional to `tenants × budget`, not to traffic.
//!
//! Modules:
//!
//! * [`fleet`] — the [`Fleet`] slab, its [`FleetBuilder`], the
//!   [`FleetSink`] delivery trait and per-tenant statistics.
//! * [`source`] — the [`FleetSource`] trait (tenant-tagged windows) and its
//!   implementations: the synthetic
//!   [`FleetStream`](flowrank_trace::FleetStream) scenario and the
//!   [`TaggedQueue`] used by live record feeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod source;

pub use fleet::{
    Fleet, FleetBuilder, FleetCollect, FleetError, FleetSink, FleetSummary, TenantStats,
};
pub use source::{FleetSource, TaggedQueue};

//! # flowrank-monitor
//!
//! The push-based streaming monitor: **one pipeline for sampling,
//! classification and ranking metrics**.
//!
//! The paper's monitor observes packets one at a time on a live link. This
//! crate is that front door for the whole workspace: every packet goes
//! through [`Monitor::push`], which
//!
//! 1. classifies the packet into the current measurement bin's ground-truth
//!    flow table (under a runtime-selected [`FlowDefinition`]),
//! 2. offers it to every *sampling lane* — an independent sampler (any
//!    [`SamplerSpec`]: random, periodic, stratified, flow, smart, adaptive)
//!    with its own deterministic RNG, a sampled flow table, and optionally a
//!    memory-bounded top-k backend ([`TopKSpec`]) fed with the retained
//!    packets,
//! 3. closes bins automatically on timestamp boundaries, ranking the ground
//!    truth **once per bin** and scoring every lane against that single
//!    ranking ([`GroundTruthRanking`] from `flowrank-core`), and emits a
//!    [`BinReport`] carrying the per-lane swapped-pair
//!    [`ComparisonOutcome`]s.
//!
//! The multi-run fan-out mode ([`MonitorBuilder::rates`] +
//! [`MonitorBuilder::runs`]) is what the paper's Sec. 8 methodology needs: 30
//! independent sampling runs at each of several rates, all sharing one
//! ground-truth classification per bin instead of reclassifying the bin
//! `runs × rates` times as the old batch engine did. The batch entry points
//! (`flowrank_sim::run_bin`, `TraceExperiment`) are now thin wrappers over
//! this crate.
//!
//! For high-volume replay, [`Monitor::push_batch`] accepts a whole SoA
//! [`flowrank_net::PacketBatch`] (e.g. straight from the zero-copy pcap
//! decoder): the monitor splits it on bin boundaries, derives flow keys
//! once per segment, classifies the ground truth in one pass and offers
//! every lane the batch at a time — skip-based samplers then touch only the
//! packets they keep. The **equivalence contract** is that `push` *is* a
//! one-element `push_batch`: cutting the stream into batches of any size
//! produces bit-identical [`BinReport`]s, including under
//! [`MonitorBuilder::threads`] sharding (pinned by the
//! `streaming_equivalence` integration suite).
//!
//! # The pipelined worker runtime
//!
//! [`MonitorBuilder::threads`] `(n > 1)` replaces the serial engine with a
//! persistent worker pool — spawned once at `build()`, joined on drop — so
//! ingestion (the caller's thread), ground-truth classification and lane
//! scoring overlap across bins instead of barrier-stepping. The caller
//! splits each batch on bin boundaries, derives keys once, routes every
//! key to its ground-truth shard, and broadcasts the segment over bounded
//! SPSC channels; worker `w` owns shard `w` plus the strided lane set
//! `{i : i mod n == w}`, and a sequencer thread merges the sealed shards,
//! ranks the bin once, scatters the scored lane reports back into lane
//! order and runs the controller step. The guarantees, pinned by the
//! `worker_runtime` suite and the golden conformance matrix:
//!
//! * **Determinism** — reports are bit-identical to the serial engine for
//!   every thread count, chunking and entry point. Shards are disjoint and
//!   merged in a fixed order, the combined ranking is re-sorted by
//!   `(size, key)`, and every queue carries the same message sequence, so
//!   scheduling is invisible in the output.
//! * **Backpressure** — segment queues are bounded (`sync_channel`): a
//!   source that outruns the pool blocks in `push_batch` instead of
//!   buffering unbounded work, which keeps `drive`'s bounded-memory
//!   promise intact. Segments smaller than
//!   [`MonitorBuilder::parallel_segment_min`] (default
//!   [`DEFAULT_PARALLEL_SEGMENT_MIN`]) run inline on the calling thread
//!   after a quiescence drain — per-packet `push` never pays a queue
//!   round-trip ([`Monitor::segment_stats`] counts both paths).
//! * **Ordering & shutdown** — sinks observe bins strictly in order with
//!   reports delivered on the calling thread; synchronous entry points
//!   drain fully before returning, so no report is ever in flight when a
//!   call returns. Dropping the monitor mid-bin sends shutdown markers
//!   behind in-flight work and joins every thread.
//!
//! # The source/sink pipeline and `drive`
//!
//! [`Monitor::drive`] is the canonical way to run a whole measurement: a
//! [`PacketSource`] yields `&PacketBatch` chunks on demand (an in-memory
//! batch or record slice, an incrementally decoded pcap capture, a scenario
//! workload synthesised window by window, or any of them re-chunked through
//! [`Chunked`]) and a [`ReportSink`] receives each closed bin's
//! [`BinReport`] **by reference** the moment it closes ([`Collect`],
//! the online [`RateCurve`] aggregator, ndjson/csv writer sinks, the
//! conformance [`DigestSink`], or a [`Tee`] of any of them). The `drive`
//! contract, spelled out on [`Monitor::drive`]:
//!
//! * reports are **chunking-invariant**: bit-identical for any source
//!   chunking and any thread count;
//! * the sink sees every bin exactly once, in bin order, idle bins
//!   included, with the final partial bin flushed at end of stream;
//! * reports are **borrowed**: the monitor recycles one report buffer
//!   across bins, so steady-state bin closes allocate nothing — a sink that
//!   keeps report data beyond `accept` must copy it (only [`Collect`]
//!   does).
//!
//! `push`, `push_batch`, `run_trace` and `run_batch` are thin wrappers over
//! the same sink-based core (a [`Collect`] sink clones each closed bin into
//! the returned `Vec`), so every equivalence guarantee carries over
//! bit-identically; `*_into` variants expose the allocation-free forms.
//! With a streaming source (e.g. [`flowrank_trace::Workload::stream`]) and
//! an aggregating sink, peak memory is independent of trace length — the
//! configuration the `drive_end_to_end` bench records.
//!
//! # Fault tolerance
//!
//! [`Monitor::try_drive`] is the fault-aware form of [`Monitor::drive`],
//! built on the fallible halves of the pipeline traits
//! ([`PacketSource::try_next_chunk`], [`ReportSink::emit`]) and governed by
//! a [`DrivePolicy`] set with [`MonitorBuilder::drive_policy`]. The
//! error/recovery contract:
//!
//! * **Skipped** — recoverable malformed records
//!   ([`SourceError::Malformed`]) when [`DrivePolicy::skip_malformed`] is
//!   set; each skip is counted in [`DriveStats::malformed_skipped`]. Fatal
//!   source errors ([`SourceError::Fatal`] — I/O failure, lost pcap record
//!   boundary) always abort with [`DriveError::Source`].
//! * **Retried** — transient sink failures
//!   ([`SinkError::is_transient`]): the same report is re-emitted up to
//!   [`DrivePolicy::sink_retries`] times with exponential backoff
//!   (each attempt counted in [`DriveStats::sink_retries`]); a retried
//!   report is re-rendered whole, so a sink that failed after a partial
//!   write may carry a duplicated fragment. Permanent sink failures (and
//!   exhausted retries) abort with [`DriveError::Sink`].
//! * **Bounded** — total absorbed recoveries (skips + retries + clamped
//!   timestamps) abort with [`DriveError::ErrorBudgetExhausted`] once they
//!   exceed [`DrivePolicy::error_budget`]; a genuinely silent source
//!   aborts with [`DriveError::SourceStalled`] instead of hanging. The
//!   stall detector is **wall-clock based**: it trips only once the
//!   source has been idle for [`DrivePolicy::stall_polls`] consecutive
//!   polls *and* [`DrivePolicy::stall_timeout`] of real time, sleeping
//!   [`DrivePolicy::idle_wait`] between idle polls so paced and tailing
//!   sources idle politely instead of busy-spinning. (Behaviour change
//!   from the original detector, which tripped on poll count alone and
//!   misfired on live sources; `stall_timeout(Duration::ZERO)` restores
//!   the poll-count-only semantics.) A skipped malformed record resets
//!   the idle streak — skipping is progress past real input, so a source
//!   alternating garbage with silence is degraded, not stalled. The
//!   error carries how long the source was silent (its `stalled_for`
//!   field). Out-of-order
//!   timestamps follow [`TimestampPolicy`]: the historical
//!   debug-assert/silent-fold default, fail-fast
//!   [`TimestampPolicy::Reject`], or counted
//!   [`TimestampPolicy::ClampAndCount`].
//! * **Poisoned** — a panic on a worker or sequencer thread of the
//!   pipelined runtime is caught, the pool drains itself, and the drive
//!   aborts with [`DriveError::WorkerPanicked`]. The monitor is then
//!   *poisoned but droppable*: further fallible calls return the same
//!   error, infallible entry points panic (one clean panic — never the old
//!   double-panic abort), and dropping the monitor joins every thread
//!   safely.
//! * **Accounted** — every recovery action lands in a [`DriveStats`]
//!   returned on successful completion and carried by every [`DriveError`],
//!   so aborted drives are auditable too.
//!
//! Fault-free `try_drive` runs are bit-identical to `drive` (pinned against
//! all conformance goldens); the deterministic fault-injection harness
//! lives in `flowrank_sim::faults`.
//!
//! For long-lived serving drives, sources can distinguish "no data right
//! now" from end-of-stream via [`PacketSource::poll_chunk`] /
//! [`SourcePoll::Pending`]; the live source adapters (pcap tailing, ndjson
//! feeds, channels, paced replay, stop gates) live in [`pipeline`], and the
//! bounded [`rolling`] window summarises reports for snapshot serving.
//!
//! # Closed-loop rate control
//!
//! [`MonitorBuilder::controller`] attaches a `flowrank-control`
//! [`ControllerSpec`]: one extra *controlled* lane whose sampling rate is
//! retuned at every bin close from the bin's own report and ground truth.
//! The decision trail rides on [`BinReport::controller`] (a
//! [`ControllerTrail`]) and the controlled lane is flagged
//! [`LaneReport::controlled`], so every sink — csv, ndjson, [`RateCurve`],
//! [`DigestSink`] — audits the loop for free. The control step runs
//! single-threaded after lane scoring, so controlled monitors keep the full
//! bit-identical-across-paths contract.
//!
//! ```
//! use flowrank_monitor::{Monitor, SamplerSpec};
//! use flowrank_net::{FlowDefinition, PacketRecord, Timestamp};
//! use std::net::Ipv4Addr;
//!
//! let mut monitor = Monitor::builder()
//!     .flow_definition(FlowDefinition::PREFIX24)
//!     .sampler(SamplerSpec::Random { rate: 0.1 })
//!     .rates(&[0.01, 0.1, 0.5])
//!     .runs(30)
//!     .bin_length(Timestamp::from_secs_f64(60.0))
//!     .top_t(10)
//!     .seed(2026)
//!     .build();
//!
//! // Live loop: push packets as the tap produces them.
//! let packet = PacketRecord::udp(
//!     Timestamp::from_secs_f64(0.5),
//!     Ipv4Addr::new(10, 0, 0, 1), 53,
//!     Ipv4Addr::new(100, 64, 0, 9), 53,
//!     120,
//! );
//! for report in monitor.push(&packet) {
//!     println!("bin {} closed: {} flows", report.bin_index, report.flows);
//! }
//! // End of trace: close the final bin.
//! let last = monitor.finish();
//! assert!(last.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod monitor;
pub mod pipeline;
pub mod report;
pub mod rolling;
mod runtime;
pub mod spec;

pub use fault::{DriveError, DrivePolicy, DriveStats, SinkError, SourceError, TimestampPolicy};
pub use monitor::{Monitor, MonitorBuilder, DEFAULT_PARALLEL_SEGMENT_MIN};
pub use pipeline::{
    ndjson_tenant, parse_ndjson_record, BatchSource, ChannelSource, Chunked, Collect, CsvSink,
    DigestSink, DriveSummary, NdjsonRecordSource, NdjsonSink, PacketSource, PcapBytesSource,
    PcapReaderSource, PcapTailSource, RateCurve, RatePoint, RecordSource, ReportSink, SourcePoll,
    StopGate, Tee,
};
pub use report::{BinReport, ControllerTrail, LaneReport, TopKReport};
pub use rolling::{BinSummary, RateSummary, RollingWindow};
pub use spec::{SamplerSpec, TopKSpec};

// Re-exported so monitor users can name the metric types without a direct
// `flowrank-core` dependency.
pub use flowrank_core::metrics::{ComparisonOutcome, GroundTruthRanking};
pub use flowrank_net::FlowDefinition;

// Re-exported so a controlled monitor can be configured without a direct
// `flowrank-control` dependency.
pub use flowrank_control::{BinObservation, ControllerSpec, RateController, RateDecision};

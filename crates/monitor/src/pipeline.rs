//! The streaming pipeline API: pull-based packet sources, push-based report
//! sinks, and the adapters that make [`Monitor::drive`](crate::Monitor::drive) the one way every
//! consumer runs a measurement.
//!
//! A [`PacketSource`] yields `&PacketBatch` chunks on demand; a
//! [`ReportSink`] receives each closed bin's [`BinReport`] **by reference**
//! the moment it closes. `Monitor::drive(&mut source, &mut sink)` pumps the
//! one into the other, so an experiment's peak memory is one chunk of
//! packets plus whatever the sink chooses to retain — for the aggregating
//! sinks ([`RateCurve`], [`DigestSink`]) that is O(rates), independent of
//! trace length.
//!
//! # Sources
//!
//! * [`BatchSource`] — a borrowed in-memory batch, yielded once.
//! * [`RecordSource`] — a borrowed `&[PacketRecord]` slice, converted to SoA
//!   chunks through one reusable scratch batch.
//! * [`PcapBytesSource`] / [`PcapReaderSource`] — captures decoded
//!   incrementally via the zero-copy batch decoder
//!   ([`flowrank_net::pcap::PcapBatchCursor`]) or the record reader.
//! * [`flowrank_trace::SynthesisStream`] (via [`flowrank_trace::Workload::stream`]) — scenario
//!   workloads synthesised window by window instead of materialising the
//!   whole trace.
//! * [`Chunked`] — wraps any source and re-cuts its chunks to a maximum
//!   size (down to single packets), for chunking-invariance tests and
//!   bounded-latency replay.
//!
//! ## Live sources
//!
//! The serving path ([`Monitor::try_drive`](crate::Monitor::try_drive) as a
//! long-lived daemon, see `flowrank-serve`) adds sources that can run out of
//! data *temporarily*. They answer [`SourcePoll::Pending`] through
//! [`PacketSource::poll_chunk`] instead of ending the stream:
//!
//! * [`PcapTailSource`] — tails a growing pcap file, resuming decode at the
//!   committed record boundary each time the file grows.
//! * [`NdjsonRecordSource`] — one packet record per JSON line from any
//!   `BufRead` (stdin, a socket); blocking, one record per chunk.
//! * [`ChannelSource`] — non-blocking mpsc adapter that turns any blocking
//!   feed running on its own thread into a pollable source.
//! * [`flowrank_trace::PacedReplay`] — a scenario workload metered out on
//!   the wall clock at a configurable speed factor.
//! * [`StopGate`] — wraps any source with a shared stop flag that converts
//!   the next poll into a clean end-of-stream (graceful shutdown).
//!
//! # Sinks
//!
//! * [`Collect`] — clones every report into a `Vec` (the compatibility sink
//!   behind `push`/`run_batch`).
//! * [`RateCurve`] — accumulates the paper's mean-accuracy-per-rate curves
//!   online (Welford moments per rate, nothing retained per bin).
//! * [`NdjsonSink`] / [`CsvSink`] — stream reports to any `io::Write` as
//!   newline-delimited JSON or flat per-lane CSV rows, allocation-free.
//! * [`DigestSink`] — folds every report into the conformance FNV-1a digest
//!   without buffering the stream.
//! * [`Tee`] — duplicates each report to two sinks; nest for more.
//!
//! Sinks receive each report as a borrow valid only for the duration of
//! [`ReportSink::accept`]; a sink that needs the report beyond the call must
//! clone it (that is exactly what [`Collect`] does — and what every other
//! sink avoids).

use std::io::{self, Write};
use std::time::Duration;

use flowrank_net::pcap::{PcapBatchCursor, PcapReader};
use flowrank_net::{CompactKey, NetError, PacketBatch, PacketRecord, Timestamp};
use flowrank_stats::summary::RunningStats;

use crate::fault::{SinkError, SourceError};
use crate::report::BinReport;

/// Copies a [`NetError`] so a latched terminating error can be surfaced
/// repeatedly through [`PacketSource::try_next_chunk`] while `error()`
/// keeps reporting it. `io::Error` is not `Clone`, so its copy preserves
/// kind and message only.
fn replicate_net_error(error: &NetError) -> NetError {
    match error {
        NetError::Io(e) => NetError::Io(io::Error::new(e.kind(), e.to_string())),
        NetError::BadPcapMagic { found } => NetError::BadPcapMagic { found: *found },
        NetError::UnsupportedLinkType { link_type } => NetError::UnsupportedLinkType {
            link_type: *link_type,
        },
        NetError::MalformedPacket { reason } => NetError::MalformedPacket { reason },
        NetError::InvalidField { field, reason } => NetError::InvalidField { field, reason },
    }
}

/// Default packet count per chunk for sources that choose their own
/// chunking. Large enough to amortise per-chunk overhead, small enough that
/// a chunk of four SoA columns stays cache-friendly.
pub const DEFAULT_CHUNK_PACKETS: usize = 4096;

/// What one [`crate::Monitor::drive`] call processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveSummary {
    /// Chunks pulled from the source.
    pub chunks: u64,
    /// Packets pushed through the monitor.
    pub packets: u64,
    /// Bin reports delivered to the sink (final flush included).
    pub reports: u64,
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// What one fallible poll of a [`PacketSource`] produced — the three-way
/// answer of [`PacketSource::poll_chunk`].
///
/// `Pending` is the explicit idle signal for live sources (a tailed capture
/// with no new bytes, a socket with nothing buffered, a paced replay whose
/// next window is not yet due): "no data right now, poll again". It is
/// distinct from `End` (the stream is over, flush the final bin) and from a
/// chunk — before this enum, idle could only be smuggled through
/// [`PacketSource::try_next_chunk`] as `Ok(Some(empty))`, a shape the
/// infallible contract forbids.
#[derive(Debug)]
pub enum SourcePoll<'a> {
    /// A non-empty chunk of packets.
    Chunk(&'a PacketBatch),
    /// No data right now — not end of stream. The drive loop counts the
    /// idle poll, sleeps [`DrivePolicy::idle_wait`](crate::DrivePolicy) and
    /// asks again.
    Pending,
    /// End of stream: the final bin can be flushed.
    End,
}

/// A pull-based packet stream: yields SoA batches until exhausted.
///
/// The returned batch borrows from the source and is valid until the next
/// call; `None` means end of stream. Packets must come out in non-decreasing
/// timestamp order across the whole stream (the monitor's push contract).
/// [`Monitor::drive`](crate::Monitor::drive) guarantees the same reports for
/// any chunking of the same packet sequence.
pub trait PacketSource {
    /// Returns the next chunk of packets, or `None` at end of stream.
    /// Implementations never return an empty batch.
    fn next_chunk(&mut self) -> Option<&PacketBatch>;

    /// The fallible form of [`PacketSource::next_chunk`], used by
    /// [`PacketSource::poll_chunk`]'s default implementation.
    ///
    /// The default wraps `next_chunk` and never errors, so every existing
    /// source is a fallible source for free. Sources with a real failure
    /// mode (the pcap sources, `flowrank_sim::faults::FaultySource`)
    /// override it to surface a [`SourceError`] instead of silently ending
    /// the stream.
    ///
    /// Two relaxations over `next_chunk`, both for fault-aware callers:
    /// `Ok(Some(batch))` **may be empty** — an *idle poll* meaning "no data
    /// right now, not end of stream" (mapped to [`SourcePoll::Pending`]) —
    /// and an [`SourceError::Malformed`] error means the source has
    /// advanced past a bad record and may be polled again.
    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        Ok(self.next_chunk())
    }

    /// The poll [`Monitor::try_drive`](crate::Monitor::try_drive) makes:
    /// chunk, [`SourcePoll::Pending`] (idle) or [`SourcePoll::End`].
    ///
    /// The default maps [`PacketSource::try_next_chunk`] — an empty chunk
    /// becomes `Pending`, `Ok(None)` becomes `End` — so every existing
    /// source keeps working unchanged. Live sources (the file tailer, the
    /// channel feed, the paced replay) override this to return `Pending`
    /// directly instead of materialising an empty batch.
    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        Ok(match self.try_next_chunk()? {
            Some(chunk) if chunk.is_empty() => SourcePoll::Pending,
            Some(chunk) => SourcePoll::Chunk(chunk),
            None => SourcePoll::End,
        })
    }
}

impl<S: PacketSource + ?Sized> PacketSource for &mut S {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        (**self).next_chunk()
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        (**self).try_next_chunk()
    }

    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        (**self).poll_chunk()
    }
}

/// Yields one borrowed in-memory batch, once.
#[derive(Debug)]
pub struct BatchSource<'a> {
    batch: Option<&'a PacketBatch>,
}

impl<'a> BatchSource<'a> {
    /// Wraps a batch as a single-chunk source.
    pub fn new(batch: &'a PacketBatch) -> Self {
        BatchSource {
            batch: Some(batch).filter(|b| !b.is_empty()),
        }
    }
}

impl PacketSource for BatchSource<'_> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        self.batch.take()
    }
}

/// Converts a borrowed record slice into SoA chunks through one reusable
/// scratch batch — the source form of `Monitor::run_trace`, with peak
/// conversion memory of one chunk instead of the whole trace.
#[derive(Debug)]
pub struct RecordSource<'a> {
    records: &'a [PacketRecord],
    position: usize,
    chunk_packets: usize,
    scratch: PacketBatch,
}

impl<'a> RecordSource<'a> {
    /// Wraps a record slice with the default chunk size.
    pub fn new(records: &'a [PacketRecord]) -> Self {
        Self::with_chunk_packets(records, DEFAULT_CHUNK_PACKETS)
    }

    /// Wraps a record slice, converting `chunk_packets` records per chunk.
    pub fn with_chunk_packets(records: &'a [PacketRecord], chunk_packets: usize) -> Self {
        RecordSource {
            records,
            position: 0,
            chunk_packets: chunk_packets.max(1),
            scratch: PacketBatch::new(),
        }
    }
}

impl PacketSource for RecordSource<'_> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        if self.position >= self.records.len() {
            return None;
        }
        let end = self.records.len().min(self.position + self.chunk_packets);
        self.scratch.clear();
        self.scratch
            .extend_from_records(&self.records[self.position..end]);
        self.position = end;
        Some(&self.scratch)
    }
}

/// Re-cuts any source's chunks to at most `max_packets` each (down to
/// single-packet chunks), preserving the packet sequence exactly.
///
/// The inner source's chunk is copied column-wise into a holding batch and
/// sliced from there, so the adapter works with any inner chunking and costs
/// one extra copy per packet — it exists for chunking-invariance tests and
/// for bounding the latency between ingest and bin close, not for peak
/// throughput.
#[derive(Debug)]
pub struct Chunked<S> {
    inner: S,
    max_packets: usize,
    held: PacketBatch,
    position: usize,
    out: PacketBatch,
}

impl<S: PacketSource> Chunked<S> {
    /// Wraps `inner`, re-cutting its chunks to at most `max_packets`.
    pub fn new(inner: S, max_packets: usize) -> Self {
        Chunked {
            inner,
            max_packets: max_packets.max(1),
            held: PacketBatch::new(),
            position: 0,
            out: PacketBatch::new(),
        }
    }
}

impl<S: PacketSource> PacketSource for Chunked<S> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        if self.position >= self.held.len() {
            let chunk = self.inner.next_chunk()?;
            self.held.clear();
            self.held.extend_from_batch(chunk, 0..chunk.len());
            self.position = 0;
            if self.held.is_empty() {
                return None;
            }
        }
        let end = self.held.len().min(self.position + self.max_packets);
        self.out.clear();
        self.out.extend_from_batch(&self.held, self.position..end);
        self.position = end;
        Some(&self.out)
    }
}

impl PacketSource for flowrank_trace::SynthesisStream {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        self.next_window()
    }
}

/// Streams an in-memory pcap capture through the zero-copy batch decoder,
/// one bounded chunk at a time.
///
/// Decode errors terminate the stream; check [`PcapBytesSource::error`]
/// after driving to distinguish clean EOF from a malformed capture.
#[derive(Debug)]
pub struct PcapBytesSource<'a> {
    cursor: PcapBatchCursor<'a>,
    chunk_packets: usize,
    batch: PacketBatch,
    error: Option<NetError>,
}

impl<'a> PcapBytesSource<'a> {
    /// Opens a capture held in memory (validates the global header).
    pub fn new(bytes: &'a [u8]) -> Result<Self, NetError> {
        Ok(PcapBytesSource {
            cursor: PcapBatchCursor::new(bytes)?,
            chunk_packets: DEFAULT_CHUNK_PACKETS,
            batch: PacketBatch::new(),
            error: None,
        })
    }

    /// Sets the number of packets decoded per chunk.
    pub fn with_chunk_packets(mut self, chunk_packets: usize) -> Self {
        self.chunk_packets = chunk_packets.max(1);
        self
    }

    /// The decode error that terminated the stream, if any.
    pub fn error(&self) -> Option<&NetError> {
        self.error.as_ref()
    }
}

impl PacketSource for PcapBytesSource<'_> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        if self.error.is_some() {
            return None;
        }
        self.batch.clear();
        match self.cursor.decode_some(&mut self.batch, self.chunk_packets) {
            Ok(0) => None,
            Ok(_) => Some(&self.batch),
            Err(error) => {
                // Like the reader source: the packets decoded before the
                // malformed record still flow downstream; the stream then
                // ends and the error is reported through `error()`.
                self.error = Some(error);
                if self.batch.is_empty() {
                    None
                } else {
                    Some(&self.batch)
                }
            }
        }
    }

    /// Like [`PcapBytesSource::next_chunk`], but a decode error is surfaced
    /// as [`SourceError::Fatal`] (pcap framing errors lose the record
    /// boundary, so the stream cannot resynchronise) — after the packets
    /// decoded before the bad record have been delivered. The error also
    /// stays latched for [`PcapBytesSource::error`], and repeated polls
    /// keep returning it.
    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        if let Some(error) = &self.error {
            return Err(SourceError::Fatal(replicate_net_error(error)));
        }
        self.batch.clear();
        match self.cursor.decode_some(&mut self.batch, self.chunk_packets) {
            Ok(0) => Ok(None),
            Ok(_) => Ok(Some(&self.batch)),
            Err(error) => {
                self.error = Some(error);
                if self.batch.is_empty() {
                    Err(SourceError::Fatal(replicate_net_error(
                        self.error.as_ref().expect("just latched"),
                    )))
                } else {
                    // Deliver the partial chunk first; the next poll errors.
                    Ok(Some(&self.batch))
                }
            }
        }
    }
}

/// Streams a pcap capture from any reader ([`PcapReader`] record loop),
/// one bounded chunk at a time. Like [`PcapBytesSource`], read/decode errors
/// terminate the stream and are reported through
/// [`PcapReaderSource::error`].
#[derive(Debug)]
pub struct PcapReaderSource<R: io::Read> {
    reader: PcapReader<R>,
    chunk_packets: usize,
    batch: PacketBatch,
    error: Option<NetError>,
}

impl<R: io::Read> PcapReaderSource<R> {
    /// Opens a capture from a reader (validates the global header).
    pub fn new(input: R) -> Result<Self, NetError> {
        Ok(PcapReaderSource {
            reader: PcapReader::new(input)?,
            chunk_packets: DEFAULT_CHUNK_PACKETS,
            batch: PacketBatch::new(),
            error: None,
        })
    }

    /// Sets the number of packets decoded per chunk.
    pub fn with_chunk_packets(mut self, chunk_packets: usize) -> Self {
        self.chunk_packets = chunk_packets.max(1);
        self
    }

    /// The read/decode error that terminated the stream, if any.
    pub fn error(&self) -> Option<&NetError> {
        self.error.as_ref()
    }
}

impl<R: io::Read> PacketSource for PcapReaderSource<R> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        if self.error.is_some() {
            return None;
        }
        self.batch.clear();
        while self.batch.len() < self.chunk_packets {
            match self.reader.next_record() {
                Ok(Some(record)) => self.batch.push_record(&record),
                Ok(None) => break,
                Err(error) => {
                    self.error = Some(error);
                    break;
                }
            }
        }
        if self.batch.is_empty() {
            None
        } else {
            Some(&self.batch)
        }
    }

    /// Like [`PcapReaderSource::next_chunk`], but a read/decode error is
    /// surfaced as [`SourceError::Fatal`] after the records read before it
    /// have been delivered; the error also stays latched for
    /// [`PcapReaderSource::error`], and repeated polls keep returning it.
    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        if let Some(error) = &self.error {
            return Err(SourceError::Fatal(replicate_net_error(error)));
        }
        self.batch.clear();
        while self.batch.len() < self.chunk_packets {
            match self.reader.next_record() {
                Ok(Some(record)) => self.batch.push_record(&record),
                Ok(None) => break,
                Err(error) => {
                    self.error = Some(error);
                    break;
                }
            }
        }
        match (&self.error, self.batch.is_empty()) {
            (Some(error), true) => Err(SourceError::Fatal(replicate_net_error(error))),
            (_, true) => Ok(None),
            // A partial chunk (with or without a latched error behind it)
            // is delivered first; the next poll surfaces the error.
            (_, false) => Ok(Some(&self.batch)),
        }
    }
}

// ---------------------------------------------------------------------------
// Live sources
// ---------------------------------------------------------------------------

/// The non-borrowing outcome the live sources' internal step functions
/// return, mapped to [`SourcePoll`] (or to sleeps) by the trait impls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LiveStep {
    Chunk,
    Pending,
    End,
}

/// How long the *infallible* entry points of the live sources sleep between
/// idle polls. The fallible path ([`PacketSource::poll_chunk`]) never
/// sleeps — pacing there belongs to
/// [`DrivePolicy::idle_wait`](crate::DrivePolicy).
const LIVE_POLL_WAIT: Duration = Duration::from_millis(1);

/// Tails a growing pcap file: decodes whatever whole records have been
/// written so far, answers [`SourcePoll::Pending`] when it catches up with
/// the writer, and picks up exactly where it left off when more bytes land —
/// the live-capture source of the `flowrank-serve` daemon.
///
/// Built on [`PcapBatchCursor::offset`]/[`PcapBatchCursor::resume_trusted`]:
/// after every decode step the committed record boundary is remembered, and
/// the next poll resumes from it over the grown buffer. A record that is
/// truncated *at the tail* (the writer has not finished flushing it) is
/// indistinguishable from a mid-write snapshot, so in follow mode it reads
/// as `Pending`; any other malformed shape — bad magic, oversized record —
/// is [`SourceError::Fatal`], latched and returned on every later poll.
///
/// With [`PcapTailSource::follow`] disabled the source behaves like
/// [`PcapBytesSource`] over the file's current contents: EOF ends the
/// stream, and a trailing truncated record is fatal instead of pending.
#[derive(Debug)]
pub struct PcapTailSource {
    file: std::fs::File,
    buf: Vec<u8>,
    /// Committed decode offset: 0 until the global header is validated,
    /// then always a record boundary.
    consumed: usize,
    header_ok: bool,
    chunk_packets: usize,
    batch: PacketBatch,
    follow: bool,
    error: Option<NetError>,
}

impl PcapTailSource {
    /// Opens `path` for tailing. The file may still be empty — even the
    /// global header may arrive later; until it does, polls answer
    /// `Pending`.
    pub fn open(path: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(PcapTailSource {
            file: std::fs::File::open(path)?,
            buf: Vec::new(),
            consumed: 0,
            header_ok: false,
            chunk_packets: DEFAULT_CHUNK_PACKETS,
            batch: PacketBatch::new(),
            follow: true,
            error: None,
        })
    }

    /// Sets the number of packets decoded per chunk.
    pub fn with_chunk_packets(mut self, chunk_packets: usize) -> Self {
        self.chunk_packets = chunk_packets.max(1);
        self
    }

    /// Whether to keep waiting for the file to grow (the default). With
    /// `false`, EOF ends the stream like a one-shot decode.
    pub fn follow(mut self, follow: bool) -> Self {
        self.follow = follow;
        self
    }

    /// The decode error that terminated the stream, if any.
    pub fn error(&self) -> Option<&NetError> {
        self.error.as_ref()
    }

    /// Bytes of the capture decoded and committed so far (the current
    /// resume boundary) — an observability hook for starvation watchdogs.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    fn step(&mut self) -> Result<LiveStep, SourceError> {
        if let Some(error) = &self.error {
            return Err(SourceError::Fatal(replicate_net_error(error)));
        }
        self.batch.clear();
        if let Err(error) = io::Read::read_to_end(&mut self.file, &mut self.buf) {
            let error = self.latch(NetError::Io(error));
            return Err(SourceError::Fatal(error));
        }
        if !self.header_ok {
            if self.buf.len() < 24 {
                // Not even the global header yet.
                return Ok(self.drained());
            }
            if let Err(error) = PcapBatchCursor::new(&self.buf) {
                let error = self.latch(error);
                return Err(SourceError::Fatal(error));
            }
            self.header_ok = true;
            self.consumed = 24;
        }
        let mut cursor = match PcapBatchCursor::resume_trusted(&self.buf, self.consumed) {
            Ok(cursor) => cursor,
            Err(error) => {
                let error = self.latch(error);
                return Err(SourceError::Fatal(error));
            }
        };
        match cursor.decode_some(&mut self.batch, self.chunk_packets) {
            Ok(0) => {
                self.consumed = cursor.offset();
                Ok(self.drained())
            }
            Ok(_) => {
                self.consumed = cursor.offset();
                Ok(LiveStep::Chunk)
            }
            Err(error) => {
                // The cursor is parked at the start of the failing record.
                self.consumed = cursor.offset();
                let truncated_at_tail = matches!(
                    &error,
                    NetError::MalformedPacket { reason }
                        if reason.starts_with("truncated pcap record")
                );
                if truncated_at_tail && self.follow {
                    // Most likely a record the writer has not finished
                    // flushing: deliver what decoded before it, then wait
                    // for the rest of the record to land.
                    if self.batch.is_empty() {
                        Ok(LiveStep::Pending)
                    } else {
                        Ok(LiveStep::Chunk)
                    }
                } else {
                    let error = self.latch(error);
                    Err(SourceError::Fatal(error))
                }
            }
        }
    }

    /// Caught up with the writer: keep waiting in follow mode, end
    /// otherwise.
    fn drained(&self) -> LiveStep {
        if self.follow {
            LiveStep::Pending
        } else {
            LiveStep::End
        }
    }

    fn latch(&mut self, error: NetError) -> NetError {
        let replica = replicate_net_error(&error);
        self.error = Some(error);
        replica
    }
}

impl PacketSource for PcapTailSource {
    /// The infallible form ends the stream at the first `Pending` in
    /// non-follow mode and sleeps through them in follow mode; errors end
    /// the stream silently (check [`PcapTailSource::error`]).
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        loop {
            match self.step() {
                Ok(LiveStep::Chunk) => return Some(&self.batch),
                Ok(LiveStep::Pending) => std::thread::sleep(LIVE_POLL_WAIT),
                Ok(LiveStep::End) | Err(_) => return None,
            }
        }
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        match self.step()? {
            LiveStep::Chunk => Ok(Some(&self.batch)),
            // `step` cleared the batch and appended nothing: the empty
            // borrow is the legacy idle-poll encoding.
            LiveStep::Pending => Ok(Some(&self.batch)),
            LiveStep::End => Ok(None),
        }
    }

    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        Ok(match self.step()? {
            LiveStep::Chunk => SourcePoll::Chunk(&self.batch),
            LiveStep::Pending => SourcePoll::Pending,
            LiveStep::End => SourcePoll::End,
        })
    }
}

/// A newline-delimited-JSON record feed — the ingestion format of the
/// `flowrank-serve` daemon's stdin/socket source.
///
/// One record per line:
///
/// ```json
/// {"ts": 12.5, "src": "10.0.0.1", "sport": 443, "dst": "100.64.0.9",
///  "dport": 55220, "proto": "tcp", "len": 1500, "seq": 7500}
/// ```
///
/// `ts` is seconds from the start of the measurement (non-decreasing, per
/// the push contract), `proto` is `"tcp"` or `"udp"`, `seq` is optional.
/// Parsing is a permissive field scan, not a general JSON parser: fields may
/// appear in any order, unknown fields are ignored.
///
/// Each chunk is one line, so ingest latency is one record; wrap in
/// [`Chunked`]'s inverse — a batching channel feeder
/// ([`ChannelSource`]) — when a hot feed needs bigger chunks. A malformed
/// line is a *recoverable* [`SourceError::Malformed`]: the line has been
/// consumed, and under
/// [`DrivePolicy::skip_malformed`](crate::DrivePolicy::skip_malformed) the
/// drive loop counts it and keeps going. Reads block until a line or EOF
/// arrives, so this source never answers `Pending` — feed it through a
/// [`ChannelSource`] when the drive loop must not block.
#[derive(Debug)]
pub struct NdjsonRecordSource<R> {
    reader: R,
    line: String,
    batch: PacketBatch,
}

impl<R: io::BufRead> NdjsonRecordSource<R> {
    /// Wraps a buffered reader of ndjson records.
    pub fn new(reader: R) -> Self {
        NdjsonRecordSource {
            reader,
            line: String::new(),
            batch: PacketBatch::new(),
        }
    }

    fn step(&mut self) -> Result<LiveStep, SourceError> {
        loop {
            self.line.clear();
            self.batch.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return Ok(LiveStep::End),
                Ok(_) => {}
                Err(error) => return Err(SourceError::Fatal(NetError::Io(error))),
            }
            if self.line.trim().is_empty() {
                continue; // blank lines separate nothing
            }
            match parse_ndjson_record(&self.line) {
                Ok(record) => {
                    self.batch.push_record(&record);
                    return Ok(LiveStep::Chunk);
                }
                Err(reason) => {
                    return Err(SourceError::Malformed(NetError::InvalidField {
                        field: "ndjson record",
                        reason,
                    }))
                }
            }
        }
    }
}

impl<R: io::BufRead> PacketSource for NdjsonRecordSource<R> {
    /// The infallible form skips malformed lines silently.
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        loop {
            match self.step() {
                Ok(LiveStep::Chunk) => return Some(&self.batch),
                Ok(_) => return None,
                Err(error) if error.is_recoverable() => continue,
                Err(_) => return None,
            }
        }
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        match self.step()? {
            LiveStep::Chunk => Ok(Some(&self.batch)),
            _ => Ok(None),
        }
    }
}

/// Extracts the raw value text of `"key": <value>` from one JSON line.
fn json_raw_value<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let mut search = line;
    let mut base = 0usize;
    loop {
        let quote = search.find('"')? + 1;
        let end = quote + search[quote..].find('"')?;
        let matched = &search[quote..end] == key;
        let mut rest = search[end + 1..].trim_start();
        if matched {
            rest = rest.strip_prefix(':')?.trim_start();
            let stop = if let Some(stripped) = rest.strip_prefix('"') {
                // A string value: up to the closing quote.
                return stripped.find('"').map(|q| &stripped[..q]);
            } else {
                rest.find([',', '}']).unwrap_or(rest.len())
            };
            return Some(rest[..stop].trim_end());
        }
        // Skip this key *and its value* so string values containing braces
        // or key-like text cannot desynchronise the scan.
        base += end + 1;
        search = &line[base..];
        if let Some(colon) = search.trim_start().strip_prefix(':') {
            if let Some(stripped) = colon.trim_start().strip_prefix('"') {
                let value_end = stripped.find('"')?;
                let consumed = search.len() - stripped.len() + value_end + 1;
                base += consumed;
                search = &line[base..];
            }
        }
    }
}

/// Parses one ndjson packet-record line (`{"ts":…,"src":…,"dst":…,"sport":…,
/// "dport":…,"len":…,"proto":"tcp"|"udp"[,"seq":…]}`) into a
/// [`PacketRecord`].
///
/// This is the exact parser [`NdjsonRecordSource`] runs on every line,
/// exposed so alternative listeners — the serve daemon's TCP socket source,
/// tenant-tagged fleet feeds — reuse one grammar instead of approximating
/// it. Unknown fields are ignored and field order is free, so a tagged
/// record (an extra `"tenant"` field, read by [`ndjson_tenant`]) parses
/// identically to an untagged one.
pub fn parse_ndjson_record(line: &str) -> Result<PacketRecord, &'static str> {
    let ts: f64 = json_raw_value(line, "ts")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"ts\"")?;
    if !ts.is_finite() || ts < 0.0 {
        return Err("\"ts\" must be finite and non-negative");
    }
    let src: std::net::Ipv4Addr = json_raw_value(line, "src")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"src\"")?;
    let dst: std::net::Ipv4Addr = json_raw_value(line, "dst")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"dst\"")?;
    let sport: u16 = json_raw_value(line, "sport")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"sport\"")?;
    let dport: u16 = json_raw_value(line, "dport")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"dport\"")?;
    let len: u16 = json_raw_value(line, "len")
        .and_then(|v| v.parse().ok())
        .ok_or("missing or invalid \"len\"")?;
    let timestamp = Timestamp::from_secs_f64(ts);
    match json_raw_value(line, "proto") {
        Some("tcp") => {
            let seq: u32 = match json_raw_value(line, "seq") {
                Some(raw) => raw.parse().map_err(|_| "invalid \"seq\"")?,
                None => 0,
            };
            Ok(PacketRecord::tcp(
                timestamp, src, sport, dst, dport, len, seq,
            ))
        }
        Some("udp") => Ok(PacketRecord::udp(timestamp, src, sport, dst, dport, len)),
        Some(_) => Err("\"proto\" must be \"tcp\" or \"udp\""),
        None => Err("missing \"proto\""),
    }
}

/// Reads the optional `"tenant"` field of an ndjson record line: `Ok(None)`
/// when the line carries no tenant tag, `Err` when it carries one that is
/// not a `u32`. Pairs with [`parse_ndjson_record`] on tenant-tagged feeds.
pub fn ndjson_tenant(line: &str) -> Result<Option<u32>, &'static str> {
    match json_raw_value(line, "tenant") {
        None => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| "invalid \"tenant\""),
    }
}

/// A non-blocking source fed by another thread through an
/// [`std::sync::mpsc`] channel — the adapter that turns any blocking feed
/// (stdin lines, an accepted socket) into a pollable live source.
///
/// The feeder thread sends `Ok(batch)` for data and `Err(source_error)` for
/// faults it wants the drive policy to arbitrate (a malformed line it
/// skipped past, a fatal read failure). An empty channel answers
/// [`SourcePoll::Pending`]; a disconnected channel (every sender dropped)
/// ends the stream.
#[derive(Debug)]
pub struct ChannelSource {
    receiver: std::sync::mpsc::Receiver<Result<PacketBatch, SourceError>>,
    batch: PacketBatch,
}

impl ChannelSource {
    /// Wraps a receiver of batches.
    pub fn new(receiver: std::sync::mpsc::Receiver<Result<PacketBatch, SourceError>>) -> Self {
        ChannelSource {
            receiver,
            batch: PacketBatch::new(),
        }
    }

    /// A connected `(sender, source)` pair.
    #[allow(clippy::type_complexity)]
    pub fn channel() -> (
        std::sync::mpsc::Sender<Result<PacketBatch, SourceError>>,
        ChannelSource,
    ) {
        let (sender, receiver) = std::sync::mpsc::channel();
        (sender, ChannelSource::new(receiver))
    }

    fn step_nonblocking(&mut self) -> Result<LiveStep, SourceError> {
        use std::sync::mpsc::TryRecvError;
        loop {
            match self.receiver.try_recv() {
                Ok(Ok(batch)) if batch.is_empty() => continue,
                Ok(Ok(batch)) => {
                    self.batch = batch;
                    return Ok(LiveStep::Chunk);
                }
                Ok(Err(error)) => return Err(error),
                Err(TryRecvError::Empty) => return Ok(LiveStep::Pending),
                Err(TryRecvError::Disconnected) => return Ok(LiveStep::End),
            }
        }
    }
}

impl PacketSource for ChannelSource {
    /// The infallible form blocks on the channel; injected errors end the
    /// stream (recoverable ones are skipped silently).
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        loop {
            match self.receiver.recv() {
                Ok(Ok(batch)) if batch.is_empty() => continue,
                Ok(Ok(batch)) => {
                    self.batch = batch;
                    return Some(&self.batch);
                }
                Ok(Err(error)) if error.is_recoverable() => continue,
                Ok(Err(_)) | Err(_) => return None,
            }
        }
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        match self.step_nonblocking()? {
            LiveStep::Chunk => Ok(Some(&self.batch)),
            LiveStep::Pending => {
                self.batch.clear();
                Ok(Some(&self.batch))
            }
            LiveStep::End => Ok(None),
        }
    }

    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        Ok(match self.step_nonblocking()? {
            LiveStep::Chunk => SourcePoll::Chunk(&self.batch),
            LiveStep::Pending => SourcePoll::Pending,
            LiveStep::End => SourcePoll::End,
        })
    }
}

/// Turns any source into a stoppable one: when the shared flag is raised
/// (a SIGINT handler, a bin-count limiter, a supervisor) the stream reports
/// a clean end-of-stream on its next poll, so
/// [`Monitor::try_drive`](crate::Monitor::try_drive) flushes the final bin
/// and returns its [`DriveStats`](crate::DriveStats) — graceful shutdown
/// without a second code path.
#[derive(Debug)]
pub struct StopGate<S> {
    inner: S,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl<S> StopGate<S> {
    /// Gates `inner` behind `stop`.
    pub fn new(inner: S, stop: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        StopGate { inner, stop }
    }

    /// The shared stop flag.
    pub fn stop_handle(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        std::sync::Arc::clone(&self.stop)
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn stopped(&self) -> bool {
        self.stop.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<S: PacketSource> PacketSource for StopGate<S> {
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        if self.stopped() {
            return None;
        }
        self.inner.next_chunk()
    }

    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        if self.stopped() {
            return Ok(None);
        }
        self.inner.try_next_chunk()
    }

    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        if self.stopped() {
            return Ok(SourcePoll::End);
        }
        self.inner.poll_chunk()
    }
}

impl PacketSource for flowrank_trace::PacedReplay {
    /// The infallible form sleeps until each window is due — pacing is
    /// preserved, so `Monitor::drive` over a paced replay takes wall time
    /// proportional to trace time over speed.
    fn next_chunk(&mut self) -> Option<&PacketBatch> {
        loop {
            match self.tick() {
                flowrank_trace::ReplayTick::Due => return Some(self.take_window()),
                flowrank_trace::ReplayTick::NotYet(wait) => std::thread::sleep(wait),
                flowrank_trace::ReplayTick::Done => return None,
            }
        }
    }

    /// The fallible form never sleeps: a not-yet-due window is an idle
    /// poll, paced by
    /// [`DrivePolicy::idle_wait`](crate::DrivePolicy::idle_wait).
    fn try_next_chunk(&mut self) -> Result<Option<&PacketBatch>, SourceError> {
        match self.tick() {
            flowrank_trace::ReplayTick::Due => Ok(Some(self.take_window())),
            flowrank_trace::ReplayTick::NotYet(_) => {
                // An empty borrow is the legacy idle-poll encoding; reuse
                // the staged batch's allocation-free empty view is not
                // possible here, so poll_chunk is the preferred entry.
                Ok(Some(crate::pipeline::empty_batch()))
            }
            flowrank_trace::ReplayTick::Done => Ok(None),
        }
    }

    fn poll_chunk(&mut self) -> Result<SourcePoll<'_>, SourceError> {
        Ok(match self.tick() {
            flowrank_trace::ReplayTick::Due => SourcePoll::Chunk(self.take_window()),
            flowrank_trace::ReplayTick::NotYet(_) => SourcePoll::Pending,
            flowrank_trace::ReplayTick::Done => SourcePoll::End,
        })
    }
}

/// A shared `&'static` empty batch for sources that must encode an idle
/// poll through [`PacketSource::try_next_chunk`]'s borrowed return type.
pub(crate) fn empty_batch() -> &'static PacketBatch {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<PacketBatch> = OnceLock::new();
    EMPTY.get_or_init(PacketBatch::new)
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives each closed bin's report, by reference, in bin order.
///
/// The borrow is only valid inside [`ReportSink::accept`]; sinks that retain
/// report data beyond the call must copy what they need.
pub trait ReportSink {
    /// Accepts one closed bin.
    fn accept(&mut self, report: &BinReport);

    /// The fallible form of [`ReportSink::accept`], used by
    /// [`Monitor::try_drive`](crate::Monitor::try_drive).
    ///
    /// The default wraps `accept` and never errors, so every existing sink
    /// is a fallible sink for free. Writer sinks override it to return
    /// their I/O errors, classified transient-vs-permanent through
    /// [`SinkError`]: the drive loop retries transient failures by
    /// re-emitting the *same report whole* (so a sink that failed after a
    /// partial write may carry a duplicated fragment), and a permanent
    /// failure latches — both `emit` and `accept` stop writing.
    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        self.accept(report);
        Ok(())
    }
}

impl<K: ReportSink + ?Sized> ReportSink for &mut K {
    fn accept(&mut self, report: &BinReport) {
        (**self).accept(report)
    }

    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        (**self).emit(report)
    }
}

/// Clones every report into a vector — the sink behind the owned-`Vec`
/// compatibility entry points (`push`, `push_batch`, `run_batch`).
#[derive(Debug, Default, Clone)]
pub struct Collect {
    /// The collected reports, in bin order.
    pub reports: Vec<BinReport>,
}

impl Collect {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReportSink for Collect {
    fn accept(&mut self, report: &BinReport) {
        self.reports.push(report.clone());
    }
}

/// Duplicates every report to two sinks, first `0` then `1`. Nest `Tee`s to
/// fan a stream out to any number of sinks.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: ReportSink, B: ReportSink> ReportSink for Tee<A, B> {
    fn accept(&mut self, report: &BinReport) {
        self.0.accept(report);
        self.1.accept(report);
    }

    /// Forwards to both sinks; the first error wins (the second sink is
    /// still offered the report when the first fails, so a retried report
    /// may reach a sink that already took it — sinks behind a retrying
    /// drive should be idempotent or not share a `Tee`).
    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        let first = self.0.emit(report);
        let second = self.1.emit(report);
        first.and(second)
    }
}

/// One point of an accuracy-vs-sampling-rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// The sampling rate (as the lanes reported it).
    pub rate: f64,
    /// Rate-grid index of the lanes folded into this point.
    pub rate_id: usize,
    /// Bins observed.
    pub bins: u64,
    /// Lane observations folded in (`bins × runs`).
    pub observations: u64,
    /// Mean ranking metric across all lane observations.
    pub ranking_mean: f64,
    /// Sample standard deviation of the ranking metric across observations.
    pub ranking_std: f64,
    /// Mean detection metric across all lane observations.
    pub detection_mean: f64,
    /// Sample standard deviation of the detection metric.
    pub detection_std: f64,
}

/// Accumulates the paper's mean-accuracy-per-rate curves online: one Welford
/// accumulator per rate, fed every lane of every bin as it closes. Nothing
/// per-bin is retained, so memory is O(rates) for any trace length.
///
/// The mean over all `bins × runs` lane observations equals the mean of
/// per-bin means (every bin carries the same lane count), so
/// [`RatePoint::ranking_mean`] is exactly the figure-level summary the batch
/// `flowrank_sim::ExperimentResult` pipeline reports as its overall mean;
/// the standard deviation here is the dispersion across *all* observations,
/// not the per-bin error bar.
#[derive(Debug, Default, Clone)]
pub struct RateCurve {
    /// Per rate: `(rate, rate_id, ranking stats, detection stats)`, in
    /// first-seen (grid) order.
    entries: Vec<(f64, usize, RunningStats, RunningStats)>,
    bins: u64,
}

impl RateCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bins folded in so far.
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// The curve accumulated so far, one point per rate in grid order.
    pub fn points(&self) -> Vec<RatePoint> {
        self.entries
            .iter()
            .map(|(rate, rate_id, ranking, detection)| RatePoint {
                rate: *rate,
                rate_id: *rate_id,
                bins: self.bins,
                observations: ranking.count(),
                ranking_mean: ranking.mean().unwrap_or(0.0),
                ranking_std: ranking.std_dev().unwrap_or(0.0),
                detection_mean: detection.mean().unwrap_or(0.0),
                detection_std: detection.std_dev().unwrap_or(0.0),
            })
            .collect()
    }
}

impl ReportSink for RateCurve {
    fn accept(&mut self, report: &BinReport) {
        self.bins += 1;
        for lane in &report.lanes {
            let entry = match self
                .entries
                .iter_mut()
                .find(|(_, id, _, _)| *id == lane.rate_id)
            {
                Some(entry) => entry,
                None => {
                    self.entries.push((
                        lane.rate,
                        lane.rate_id,
                        RunningStats::new(),
                        RunningStats::new(),
                    ));
                    self.entries.last_mut().expect("just pushed")
                }
            };
            entry.2.push(lane.ranking_metric());
            entry.3.push(lane.detection_metric());
        }
    }
}

/// Streams every report as one JSON object per line (ndjson) to a writer.
///
/// Rendering writes straight into the writer — no intermediate strings. I/O
/// errors latch: the first one stops all further output and is returned by
/// [`NdjsonSink::finish`].
#[derive(Debug)]
pub struct NdjsonSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> NdjsonSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        NdjsonSink { out, error: None }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn render(out: &mut W, report: &BinReport) -> io::Result<()> {
        write!(
            out,
            "{{\"bin\":{},\"bin_start_s\":{},\"packets\":{},\"flows\":{},",
            report.bin_index,
            report.bin_start.as_secs_f64(),
            report.packets,
            report.flows
        )?;
        // Emitted only when a memory budget actually evicted, so
        // pre-budget consumers see byte-identical lines.
        if report.evictions != 0 {
            write!(out, "\"evictions\":{},", report.evictions)?;
        }
        out.write_all(b"\"lanes\":[")?;
        for (i, lane) in report.lanes.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write!(
                out,
                "{{\"rate\":{},\"rate_id\":{},\"run\":{},\"sampler\":\"{}\",\
                 \"sampled_flows\":{},\"sampled_packets\":{},\
                 \"ranking_swaps\":{},\"detection_swaps\":{},\"controlled\":{}}}",
                lane.rate,
                lane.rate_id,
                lane.run,
                lane.sampler,
                lane.sampled_flows,
                lane.sampled_packets,
                lane.outcome.ranking_swaps,
                lane.outcome.detection_swaps,
                lane.controlled
            )?;
        }
        out.write_all(b"]")?;
        if let Some(trail) = &report.controller {
            write!(
                out,
                ",\"controller\":{{\"name\":\"{}\",\"lane\":{},\
                 \"applied_rate\":{},\"decided_rate\":{},\
                 \"swapped_fraction\":{},\"top_churn\":{}}}",
                trail.controller,
                trail.lane,
                trail.applied_rate,
                trail.decided_rate,
                trail.swapped_fraction,
                trail.top_churn
            )?;
        }
        out.write_all(b"}\n")
    }
}

impl<W: Write> ReportSink for NdjsonSink<W> {
    fn accept(&mut self, report: &BinReport) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = Self::render(&mut self.out, report) {
            self.error = Some(error);
        }
    }

    /// Renders the report, returning the I/O error instead of latching it
    /// when it is transient (so the drive loop can retry); permanent errors
    /// latch exactly like [`NdjsonSink::accept`]'s, stopping all further
    /// output and surfacing through [`NdjsonSink::finish`] too.
    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        if let Some(error) = &self.error {
            return Err(SinkError::permanent(io::Error::new(
                error.kind(),
                error.to_string(),
            )));
        }
        match Self::render(&mut self.out, report) {
            Ok(()) => Ok(()),
            Err(error) => {
                let sink_error = SinkError::from(error);
                if !sink_error.is_transient() {
                    let e = sink_error.io_error();
                    self.error = Some(io::Error::new(e.kind(), e.to_string()));
                }
                Err(sink_error)
            }
        }
    }
}

/// Streams every report as flat per-lane CSV rows
/// (`bin,bin_start_s,packets,flows,rate,run,sampler,sampled_flows,sampled_packets,ranking_swaps,detection_swaps,controlled`),
/// with a header row before the first report. Same latching error handling
/// as [`NdjsonSink`].
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
    error: Option<io::Error>,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            wrote_header: false,
            error: None,
        }
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn render(out: &mut W, wrote_header: &mut bool, report: &BinReport) -> io::Result<()> {
        if !*wrote_header {
            writeln!(
                out,
                "bin,bin_start_s,packets,flows,rate,run,sampler,\
                 sampled_flows,sampled_packets,ranking_swaps,detection_swaps,\
                 controlled"
            )?;
            *wrote_header = true;
        }
        for lane in &report.lanes {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                report.bin_index,
                report.bin_start.as_secs_f64(),
                report.packets,
                report.flows,
                lane.rate,
                lane.run,
                lane.sampler,
                lane.sampled_flows,
                lane.sampled_packets,
                lane.outcome.ranking_swaps,
                lane.outcome.detection_swaps,
                lane.controlled
            )?;
        }
        Ok(())
    }
}

impl<W: Write> ReportSink for CsvSink<W> {
    fn accept(&mut self, report: &BinReport) {
        if self.error.is_some() {
            return;
        }
        if let Err(error) = Self::render(&mut self.out, &mut self.wrote_header, report) {
            self.error = Some(error);
        }
    }

    /// Same transient-vs-permanent contract as [`NdjsonSink::emit`].
    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        if let Some(error) = &self.error {
            return Err(SinkError::permanent(io::Error::new(
                error.kind(),
                error.to_string(),
            )));
        }
        match Self::render(&mut self.out, &mut self.wrote_header, report) {
            Ok(()) => Ok(()),
            Err(error) => {
                let sink_error = SinkError::from(error);
                if !sink_error.is_transient() {
                    let e = sink_error.io_error();
                    self.error = Some(io::Error::new(e.kind(), e.to_string()));
                }
                Err(sink_error)
            }
        }
    }
}

/// Folds every report into a stable 64-bit FNV-1a digest as it arrives — the
/// streaming form of the conformance harness's report digest, with no report
/// buffering.
///
/// Every observable field is folded in — bin index and start, packet and
/// flow counts, and per lane the rate (as IEEE bits), run index, sampler
/// name, sampled sizes, the full
/// [`ComparisonOutcome`](flowrank_core::metrics::ComparisonOutcome) and,
/// when present, the top-k backend name, memory occupancy and entry list
/// (packed keys and estimates). Only integer arithmetic and explicit
/// `f64::to_bits` are used, so the digest is stable across platforms,
/// optimisation levels and thread counts. Feeding the same report stream in
/// the same order always produces the same digest, and the digest of a
/// stream equals `digest_reports` of the collected stream.
#[derive(Debug, Clone)]
pub struct DigestSink {
    hash: u64,
    reports: u64,
}

impl Default for DigestSink {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestSink {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Creates an empty digest.
    pub fn new() -> Self {
        DigestSink {
            hash: Self::OFFSET,
            reports: 0,
        }
    }

    /// Number of reports folded in so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// The offline, length-prefixed digest of a collected report stream —
    /// the value `flowrank_sim::digest_reports` pins its golden files on.
    /// It folds the same per-report bytes as the streaming sink but prefixes
    /// the stream length (which a streaming sink cannot know), so its values
    /// differ from [`DigestSink::digest`] while pinning exactly as much.
    pub fn digest_reports(reports: &[BinReport]) -> u64 {
        let mut sink = DigestSink::new();
        sink.u64(reports.len() as u64);
        for report in reports {
            sink.fold_report(report);
        }
        sink.hash
    }

    /// The digest of the stream seen so far: the FNV-1a fold of every
    /// accepted report, finalised with the report count.
    ///
    /// A streaming sink cannot know the final stream length up front, so the
    /// count is folded at read time rather than as a prefix the way the
    /// offline `flowrank_sim::digest_reports` does. The two digests
    /// therefore produce *different values* for the same stream but have the
    /// same discriminating power: two streams digest equal under either iff
    /// they have the same length and equal reports (up to 64-bit collision).
    pub fn digest(&self) -> u64 {
        let mut finished = self.clone();
        finished.u64(self.reports);
        finished.hash
    }

    fn byte(&mut self, b: u8) {
        self.hash = (self.hash ^ b as u64).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u128(&mut self, v: u128) {
        self.u64(v as u64);
        self.u64((v >> 64) as u64);
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn fold_report(&mut self, report: &BinReport) {
        self.u64(report.bin_index);
        self.u64(report.bin_start.as_micros());
        self.u64(report.packets);
        self.u64(report.flows as u64);
        // Budget evictions fold in only when they happened: unbudgeted
        // streams (and budgeted ones whose budget never bound) digest
        // exactly as they always did, so the pre-budget golden corpus stays
        // valid while eviction schedules are still pinnable.
        if report.evictions != 0 {
            self.u64(report.evictions);
        }
        self.u64(report.lanes.len() as u64);
        for lane in &report.lanes {
            self.u64(lane.rate.to_bits());
            self.u64(lane.run as u64);
            self.str(lane.sampler);
            self.u64(lane.sampled_flows as u64);
            self.u64(lane.sampled_packets);
            self.u64(lane.outcome.ranking_swaps);
            self.u64(lane.outcome.detection_swaps);
            self.u64(lane.outcome.missed_top_flows);
            self.u64(lane.outcome.ranking_pairs);
            self.u64(lane.outcome.detection_pairs);
            match &lane.topk {
                None => self.byte(0),
                Some(topk) => {
                    self.byte(1);
                    self.str(topk.backend);
                    self.u64(topk.memory_entries as u64);
                    self.u64(topk.entries.len() as u64);
                    for entry in &topk.entries {
                        self.u128(entry.key.pack());
                        self.u64(entry.estimate);
                    }
                }
            }
        }
    }
}

impl ReportSink for DigestSink {
    fn accept(&mut self, report: &BinReport) {
        self.reports += 1;
        self.fold_report(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use crate::spec::SamplerSpec;
    use flowrank_net::pcap::records_to_pcap_bytes;
    use flowrank_net::Timestamp;
    use flowrank_trace::{SprintModel, SynthesisConfig, Workload};
    use std::net::Ipv4Addr;

    fn trace() -> Vec<PacketRecord> {
        let flows = SprintModel::small(130.0, 12.0).generate_flows(3);
        flowrank_trace::synthesize_packets(&flows, &SynthesisConfig::default(), 3)
    }

    /// Flow `i` of `flows` sends `10 * (flows − i)` packets inside the bin
    /// starting at `offset_secs`.
    fn synth_packets(flows: u8, offset_secs: f64) -> Vec<PacketRecord> {
        let mut packets = Vec::new();
        for i in 0..flows {
            for j in 0..(10 * (flows - i) as usize) {
                packets.push(PacketRecord::udp(
                    Timestamp::from_secs_f64(offset_secs + j as f64 * 0.01),
                    Ipv4Addr::new(10, 0, 0, i),
                    1000 + i as u16,
                    Ipv4Addr::new(100, 64, i, 1),
                    80,
                    500,
                ));
            }
        }
        packets.sort_by_key(|p| p.timestamp);
        packets
    }

    fn monitor() -> Monitor {
        Monitor::builder()
            .sampler(SamplerSpec::Stratified { rate: 0.25 })
            .rates(&[0.05, 0.25])
            .runs(2)
            .bin_length(Timestamp::from_secs_f64(60.0))
            .seed(11)
            .build()
    }

    #[test]
    fn drive_matches_run_trace_for_every_source_shape() {
        let packets = trace();
        let baseline = monitor().run_trace(&packets);
        assert!(baseline.len() >= 2);

        let batch = PacketBatch::from_records(&packets);
        let mut from_batch = Collect::new();
        let summary = monitor().drive(&mut BatchSource::new(&batch), &mut from_batch);
        assert_eq!(from_batch.reports, baseline);
        assert_eq!(summary.packets, packets.len() as u64);
        assert_eq!(summary.reports, baseline.len() as u64);
        assert_eq!(summary.chunks, 1);

        for chunk in [1usize, 13, 4096] {
            let mut sink = Collect::new();
            let mut source = RecordSource::with_chunk_packets(&packets, chunk);
            monitor().drive(&mut source, &mut sink);
            assert_eq!(sink.reports, baseline, "record chunk {chunk}");

            let mut sink = Collect::new();
            let mut source = Chunked::new(BatchSource::new(&batch), chunk);
            monitor().drive(&mut source, &mut sink);
            assert_eq!(sink.reports, baseline, "re-chunk {chunk}");
        }
    }

    #[test]
    fn pcap_sources_drive_identically_to_the_record_path() {
        let packets = trace();
        // Pcap stores microsecond timestamps; compare against the decoded
        // records so both paths see the identical stream.
        let bytes = records_to_pcap_bytes(&packets).unwrap();
        let decoded = flowrank_net::pcap::pcap_bytes_to_records(&bytes).unwrap();
        let baseline = monitor().run_trace(&decoded);

        let mut sink = Collect::new();
        let mut source = PcapBytesSource::new(&bytes)
            .unwrap()
            .with_chunk_packets(257);
        monitor().drive(&mut source, &mut sink);
        assert!(source.error().is_none());
        assert_eq!(sink.reports, baseline);

        let mut sink = Collect::new();
        let mut source = PcapReaderSource::new(&bytes[..])
            .unwrap()
            .with_chunk_packets(123);
        monitor().drive(&mut source, &mut sink);
        assert!(source.error().is_none());
        assert_eq!(sink.reports, baseline);
    }

    #[test]
    fn pcap_sources_agree_on_truncated_captures() {
        // Both sources must surface the error AND deliver the packets
        // decoded before the malformed record, so a truncated capture
        // produces the same reports whichever source reads it.
        let bytes = records_to_pcap_bytes(&trace()).unwrap();
        let cut = &bytes[..bytes.len() - 100];

        let mut bytes_source = PcapBytesSource::new(cut).unwrap().with_chunk_packets(64);
        let mut from_bytes = Collect::new();
        let bytes_summary = monitor().drive(&mut bytes_source, &mut from_bytes);
        assert!(
            bytes_source.error().is_some(),
            "truncated capture must report"
        );
        assert!(
            bytes_summary.packets > 0,
            "packets before the truncation still flow"
        );

        let mut reader_source = PcapReaderSource::new(cut).unwrap().with_chunk_packets(64);
        let mut from_reader = Collect::new();
        let reader_summary = monitor().drive(&mut reader_source, &mut from_reader);
        assert!(reader_source.error().is_some());
        assert_eq!(bytes_summary.packets, reader_summary.packets);
        assert_eq!(from_bytes.reports, from_reader.reports);
    }

    #[test]
    fn workload_stream_is_a_packet_source() {
        let workload = Workload::flash_crowd();
        let baseline = monitor().run_trace(&workload.synthesize(7));
        let mut sink = Collect::new();
        let summary = monitor().drive(&mut workload.stream(7), &mut sink);
        assert_eq!(sink.reports, baseline);
        assert!(summary.chunks >= 2, "the stream yields multiple windows");
    }

    #[test]
    fn rate_curve_aggregates_online() {
        let packets = trace();
        let baseline = monitor().run_trace(&packets);
        let mut curve = RateCurve::new();
        let mut source = RecordSource::new(&packets);
        monitor().drive(&mut source, &mut curve);
        assert_eq!(curve.bins(), baseline.len() as u64);
        let points = curve.points();
        assert_eq!(points.len(), 2, "one point per grid rate");
        for (rate_id, point) in points.iter().enumerate() {
            assert_eq!(point.rate_id, rate_id);
            assert_eq!(point.bins, baseline.len() as u64);
            assert_eq!(point.observations, 2 * baseline.len() as u64);
            // Cross-check the online mean against the collected reports.
            let mut expected = RunningStats::new();
            for report in &baseline {
                for lane in report.lanes_at_rate_id(rate_id) {
                    expected.push(lane.ranking_metric());
                }
            }
            assert_eq!(point.ranking_mean, expected.mean().unwrap());
            assert_eq!(point.ranking_std, expected.std_dev().unwrap());
        }
        // Higher sampling rate, lower error.
        assert!(points[1].ranking_mean <= points[0].ranking_mean);
    }

    #[test]
    fn digest_sink_matches_streamed_and_collected_paths() {
        let packets = trace();
        let baseline = monitor().run_trace(&packets);
        let mut offline = DigestSink::new();
        for report in &baseline {
            offline.accept(report);
        }

        let mut streamed = DigestSink::new();
        let mut source = RecordSource::with_chunk_packets(&packets, 97);
        monitor().drive(&mut source, &mut streamed);
        assert_eq!(streamed.reports(), baseline.len() as u64);
        assert_eq!(streamed.digest(), offline.digest());

        // Sensitive to truncation and to content.
        let mut shorter = DigestSink::new();
        for report in &baseline[..baseline.len() - 1] {
            shorter.accept(report);
        }
        assert_ne!(shorter.digest(), offline.digest());
        let mut tweaked = DigestSink::new();
        let mut first = baseline[0].clone();
        first.packets += 1;
        tweaked.accept(&first);
        for report in &baseline[1..] {
            tweaked.accept(report);
        }
        assert_ne!(tweaked.digest(), offline.digest());
    }

    #[test]
    fn tee_duplicates_and_writer_sinks_render() {
        let packets = trace();
        let mut tee = Tee(
            Tee(Collect::new(), NdjsonSink::new(Vec::new())),
            CsvSink::new(Vec::new()),
        );
        let mut source = RecordSource::new(&packets);
        monitor().drive(&mut source, &mut tee);
        let Tee(Tee(collected, ndjson), csv) = tee;
        let baseline = monitor().run_trace(&packets);
        assert_eq!(collected.reports, baseline);

        let ndjson = String::from_utf8(ndjson.finish().unwrap()).unwrap();
        assert_eq!(ndjson.lines().count(), baseline.len());
        for (line, report) in ndjson.lines().zip(&baseline) {
            assert!(line.starts_with(&format!("{{\"bin\":{}", report.bin_index)));
            assert!(line.ends_with("]}"));
            assert!(line.contains("\"sampler\":\"stratified\""));
        }

        let csv = String::from_utf8(csv.finish().unwrap()).unwrap();
        let lanes: usize = baseline.iter().map(|r| r.lanes.len()).sum();
        assert_eq!(csv.lines().count(), 1 + lanes, "header + one row per lane");
        assert!(csv.starts_with("bin,bin_start_s,packets,flows,rate,run,sampler"));
    }

    #[test]
    fn empty_sources_drive_to_nothing() {
        let empty = PacketBatch::new();
        let mut sink = Collect::new();
        let summary = monitor().drive(&mut BatchSource::new(&empty), &mut sink);
        assert_eq!(summary, DriveSummary::default());
        assert!(sink.reports.is_empty());

        let mut sink = Collect::new();
        monitor().drive(&mut RecordSource::new(&[]), &mut sink);
        assert!(sink.reports.is_empty());
    }

    #[test]
    fn drive_can_resume_a_partially_pushed_monitor() {
        let packets = trace();
        let baseline = monitor().run_trace(&packets);
        let mut m = monitor();
        let mut sink = Collect::new();
        for p in &packets[..50] {
            m.push_into(p, &mut sink);
        }
        let rest = PacketBatch::from_records(&packets[50..]);
        m.drive(&mut BatchSource::new(&rest), &mut sink);
        assert_eq!(sink.reports, baseline);
    }

    #[test]
    fn csv_sink_rows_are_parseable() {
        let packet = PacketRecord::udp(
            Timestamp::from_secs_f64(1.0),
            Ipv4Addr::new(10, 0, 0, 1),
            53,
            Ipv4Addr::new(100, 64, 0, 9),
            53,
            120,
        );
        let mut m = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .build();
        let mut csv = CsvSink::new(Vec::new());
        m.push_into(&packet, &mut csv);
        m.finish_into(&mut csv);
        let text = String::from_utf8(csv.finish().unwrap()).unwrap();
        let row = text.lines().nth(1).unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), 12);
        assert_eq!(fields[0], "0");
        assert_eq!(fields[2], "1", "one packet");
        assert_eq!(fields[3], "1", "one flow");
        assert_eq!(fields[6], "random");
        assert_eq!(fields[11], "false", "static lane is not controlled");
    }

    #[test]
    fn try_next_chunk_defaults_to_the_infallible_path() {
        let packets = trace();
        let batch = PacketBatch::from_records(&packets);
        let mut source = BatchSource::new(&batch);
        let first = source.try_next_chunk().expect("no failure mode");
        assert_eq!(first.map(|b| b.len()), Some(packets.len()));
        assert!(source.try_next_chunk().unwrap().is_none(), "end of stream");
    }

    #[test]
    fn pcap_try_sources_surface_fatal_errors_after_partial_delivery() {
        let bytes = records_to_pcap_bytes(&trace()).unwrap();
        let cut = &bytes[..bytes.len() - 100];

        // Reference: the infallible path's packet count on the same capture.
        let mut infallible = PcapBytesSource::new(cut).unwrap().with_chunk_packets(64);
        let mut expected = 0usize;
        while let Some(chunk) = infallible.next_chunk() {
            expected += chunk.len();
        }

        let mut source = PcapBytesSource::new(cut).unwrap().with_chunk_packets(64);
        let mut decoded = 0usize;
        let error = loop {
            match source.try_next_chunk() {
                Ok(Some(chunk)) => decoded += chunk.len(),
                Ok(None) => panic!("truncated capture must error, not end cleanly"),
                Err(error) => break error,
            }
        };
        assert!(!error.is_recoverable(), "framing errors are fatal");
        assert_eq!(decoded, expected, "partial packets still flow first");
        assert!(source.error().is_some(), "error() keeps reporting");
        assert!(source.try_next_chunk().is_err(), "stays terminated");

        let mut reader = PcapReaderSource::new(cut).unwrap().with_chunk_packets(64);
        let mut from_reader = 0usize;
        let reader_error = loop {
            match reader.try_next_chunk() {
                Ok(Some(chunk)) => from_reader += chunk.len(),
                Ok(None) => panic!("truncated capture must error, not end cleanly"),
                Err(error) => break error,
            }
        };
        assert!(!reader_error.is_recoverable());
        assert_eq!(from_reader, expected, "both sources agree");
        assert!(reader.try_next_chunk().is_err());
    }

    /// Writer that fails with the given error kind for the first `failures`
    /// writes, then forwards to a `Vec`.
    struct FlakyWriter {
        failures: usize,
        kind: io::ErrorKind,
        out: Vec<u8>,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(io::Error::new(self.kind, "injected write failure"));
            }
            self.out.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_sink_emit_classifies_transient_and_permanent_failures() {
        let report = {
            let mut m = monitor();
            m.push_batch(&PacketBatch::from_records(&trace())).remove(0)
        };

        // Transient: emit errors but does NOT latch — the retry succeeds.
        // (TimedOut, not Interrupted: `write_all` swallows Interrupted by
        // retrying internally, so it never reaches the sink's classifier.)
        let mut sink = NdjsonSink::new(FlakyWriter {
            failures: 1,
            kind: io::ErrorKind::TimedOut,
            out: Vec::new(),
        });
        let error = sink.emit(&report).unwrap_err();
        assert!(error.is_transient());
        sink.emit(&report).expect("retry succeeds");
        let out = sink.finish().expect("no latched error");
        assert_eq!(String::from_utf8(out.out).unwrap().lines().count(), 1);

        // Permanent: emit errors AND latches — accept stops, finish errors.
        let mut sink = CsvSink::new(FlakyWriter {
            failures: usize::MAX,
            kind: io::ErrorKind::BrokenPipe,
            out: Vec::new(),
        });
        let error = sink.emit(&report).unwrap_err();
        assert!(!error.is_transient());
        assert!(sink.emit(&report).is_err(), "latched");
        sink.accept(&report); // must be a no-op, not a panic
        assert!(sink.finish().is_err());
    }

    #[test]
    fn rate_curve_with_zero_bins_is_empty() {
        let curve = RateCurve::new();
        assert_eq!(curve.bins(), 0);
        assert!(curve.points().is_empty());
    }

    #[test]
    fn rate_curve_from_a_single_report_is_finite() {
        // One bin, one lane, one observation per stat: the std-dev of a
        // single sample is undefined, and points() must report 0.0 for it
        // rather than NaN.
        let packet = PacketRecord::udp(
            Timestamp::from_secs_f64(1.0),
            Ipv4Addr::new(10, 0, 0, 1),
            53,
            Ipv4Addr::new(100, 64, 0, 9),
            53,
            120,
        );
        let mut m = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .build();
        let mut curve = RateCurve::new();
        m.push_into(&packet, &mut curve);
        m.finish_into(&mut curve);
        let points = curve.points();
        assert_eq!(curve.bins(), 1);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].observations, 1);
        assert_eq!(points[0].ranking_std, 0.0);
        assert_eq!(points[0].detection_std, 0.0);
        assert!(points[0].ranking_mean.is_finite());
    }

    #[test]
    fn rate_curve_folds_duplicate_rate_ids_across_runs_and_bins() {
        // Three runs share each rate_id, over two bins: every point must
        // fold bins × runs observations into one entry per rate, in grid
        // order, not one entry per lane.
        let mut packets = synth_packets(40, 0.0);
        packets.extend(synth_packets(40, 61.0));
        let mut m = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.1 })
            .rates(&[0.05, 0.5])
            .runs(3)
            .seed(9)
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        let mut curve = RateCurve::new();
        let batch = PacketBatch::from_records(&packets);
        m.push_batch_into(&batch, &mut curve);
        m.finish_into(&mut curve);
        let points = curve.points();
        assert_eq!(curve.bins(), 2);
        assert_eq!(points.len(), 2, "one point per rate_id");
        for (i, point) in points.iter().enumerate() {
            assert_eq!(point.rate_id, i, "grid order");
            assert_eq!(point.observations, 6, "2 bins × 3 runs");
        }
    }

    #[test]
    fn rate_curve_is_nan_free_when_a_lane_keeps_nothing() {
        // A rate-0 lane never samples a packet: every metric it reports is
        // constant, and the curve must stay finite everywhere.
        let mut packets = synth_packets(30, 0.0);
        packets.extend(synth_packets(30, 61.0));
        let mut m = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.0 })
            .seed(4)
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        let mut curve = RateCurve::new();
        let batch = PacketBatch::from_records(&packets);
        m.push_batch_into(&batch, &mut curve);
        m.finish_into(&mut curve);
        let points = curve.points();
        assert_eq!(points.len(), 1);
        for point in &points {
            for value in [
                point.ranking_mean,
                point.ranking_std,
                point.detection_mean,
                point.detection_std,
            ] {
                assert!(value.is_finite(), "NaN/inf leaked into {point:?}");
            }
        }
    }
}

//! Rolling serving state: a bounded sliding window of per-bin summaries.
//!
//! A long-lived monitor (the `flowrank-serve` daemon) cannot keep every
//! [`BinReport`] — a report carries `runs × rates` lanes, and the stream
//! never ends. [`RollingWindow`] is the serving-side [`ReportSink`]: it
//! folds each closed bin into a compact [`BinSummary`] (per-rate accuracy
//! means, the current top-k list, packet/flow totals), retains only the most
//! recent `retain` of them, and renders the whole state as one JSON snapshot
//! on demand. Memory is `O(retain × rates × top_t)` — independent of how
//! long the daemon has been running — and summaries are recycled front to
//! back, so steady-state bin closes reuse the evicted summary's allocations.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::fault::SinkError;
use crate::pipeline::ReportSink;
use crate::report::BinReport;

/// Mean accuracy of one sampling rate's lanes in one bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RateSummary {
    /// Nominal sampling rate.
    pub rate: f64,
    /// Index in the monitor's rate grid (see
    /// [`LaneReport::rate_id`](crate::LaneReport::rate_id)).
    pub rate_id: usize,
    /// Lanes that ran at this rate.
    pub lanes: usize,
    /// Mean ranking metric (weighted swapped pairs) across the lanes.
    pub mean_ranking: f64,
    /// Mean detection metric (top-t boundary swaps) across the lanes.
    pub mean_detection: f64,
    /// Mean packets the lanes retained.
    pub mean_sampled_packets: f64,
}

/// One bin of a [`RollingWindow`]: everything the serving snapshot keeps
/// after the full [`BinReport`] is recycled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinSummary {
    /// 0-based bin index since time zero.
    pub bin_index: u64,
    /// Bin start in trace seconds.
    pub bin_start_secs: f64,
    /// Packets observed in the bin (before sampling).
    pub packets: u64,
    /// Distinct ground-truth flows in the bin.
    pub flows: usize,
    /// One summary per sampling rate, in rate-grid order.
    pub rates: Vec<RateSummary>,
    /// The top-k list of the first lane that ran a backend: rendered flow
    /// key and estimated size, largest first.
    pub top: Vec<(String, u64)>,
}

impl BinSummary {
    fn fill(&mut self, report: &BinReport) {
        self.bin_index = report.bin_index;
        self.bin_start_secs = report.bin_start.as_secs_f64();
        self.packets = report.packets;
        self.flows = report.flows;
        self.rates.clear();
        for lane in &report.lanes {
            let slot = match self.rates.iter_mut().find(|r| r.rate_id == lane.rate_id) {
                Some(slot) => slot,
                None => {
                    self.rates.push(RateSummary {
                        rate: lane.rate,
                        rate_id: lane.rate_id,
                        ..RateSummary::default()
                    });
                    self.rates.last_mut().expect("just pushed")
                }
            };
            slot.lanes += 1;
            slot.mean_ranking += lane.ranking_metric();
            slot.mean_detection += lane.detection_metric();
            slot.mean_sampled_packets += lane.sampled_packets as f64;
        }
        for slot in &mut self.rates {
            let n = slot.lanes.max(1) as f64;
            slot.mean_ranking /= n;
            slot.mean_detection /= n;
            slot.mean_sampled_packets /= n;
        }
        self.rates.sort_by_key(|r| r.rate_id);
        self.top.clear();
        if let Some(topk) = report.lanes.iter().find_map(|lane| lane.topk.as_ref()) {
            for entry in &topk.entries {
                self.top.push((entry.key.to_string(), entry.estimate));
            }
        }
    }
}

/// A [`ReportSink`] that keeps the most recent `retain` bins as compact
/// [`BinSummary`]s plus running stream totals, and serves the whole state
/// as a JSON snapshot — the state behind `flowrank-serve`'s poll endpoint.
#[derive(Debug)]
pub struct RollingWindow {
    bins: VecDeque<BinSummary>,
    retain: usize,
    bins_seen: u64,
    packets_seen: u64,
}

impl RollingWindow {
    /// A window retaining the latest `retain` bins (at least one).
    pub fn new(retain: usize) -> Self {
        let retain = retain.max(1);
        RollingWindow {
            bins: VecDeque::with_capacity(retain),
            retain,
            bins_seen: 0,
            packets_seen: 0,
        }
    }

    /// The retention bound.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Bins accepted over the sink's whole lifetime (retained or not).
    pub fn bins_seen(&self) -> u64 {
        self.bins_seen
    }

    /// Packets observed over the sink's whole lifetime.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// The retained summaries, oldest first.
    pub fn bins(&self) -> impl Iterator<Item = &BinSummary> {
        self.bins.iter()
    }

    /// The most recently closed bin, if any bin has closed yet.
    pub fn latest(&self) -> Option<&BinSummary> {
        self.bins.back()
    }

    /// Packets across the retained window only.
    pub fn window_packets(&self) -> u64 {
        self.bins.iter().map(|bin| bin.packets).sum()
    }

    /// Renders the whole window as one JSON object into `out` (cleared
    /// first). Retained bins appear oldest first; the latest bin carries
    /// its full per-rate and top-k detail, earlier bins only totals.
    pub fn render_json(&self, out: &mut String) {
        out.clear();
        out.push('{');
        let _ = write!(
            out,
            "\"bins_seen\":{},\"retain\":{},\"packets_seen\":{},\"window_packets\":{}",
            self.bins_seen,
            self.retain,
            self.packets_seen,
            self.window_packets()
        );
        out.push_str(",\"bins\":[");
        for (i, bin) in self.bins.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"bin\":{},\"start_s\":{},\"packets\":{},\"flows\":{}}}",
                bin.bin_index, bin.bin_start_secs, bin.packets, bin.flows
            );
        }
        out.push(']');
        if let Some(latest) = self.latest() {
            let _ = write!(
                out,
                ",\"latest\":{{\"bin\":{},\"start_s\":{},\"packets\":{},\"flows\":{}",
                latest.bin_index, latest.bin_start_secs, latest.packets, latest.flows
            );
            out.push_str(",\"rates\":[");
            for (i, rate) in latest.rates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"rate\":{},\"lanes\":{},\"mean_ranking\":{},\"mean_detection\":{},\"mean_sampled_packets\":{}}}",
                    rate.rate,
                    rate.lanes,
                    rate.mean_ranking,
                    rate.mean_detection,
                    rate.mean_sampled_packets
                );
            }
            out.push_str("],\"top\":[");
            for (i, (flow, estimate)) in latest.top.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"flow\":\"{flow}\",\"bytes\":{estimate}}}");
            }
            out.push_str("]}");
        }
        out.push('}');
    }
}

impl ReportSink for RollingWindow {
    fn accept(&mut self, report: &BinReport) {
        self.bins_seen += 1;
        self.packets_seen += report.packets;
        let mut summary = if self.bins.len() >= self.retain {
            // Evict the oldest and reuse its buffers for the new bin.
            self.bins.pop_front().expect("retain >= 1")
        } else {
            BinSummary::default()
        };
        summary.fill(report);
        self.bins.push_back(summary);
    }

    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        self.accept(report);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::LaneReport;
    use flowrank_core::metrics::ComparisonOutcome;
    use flowrank_net::Timestamp;

    fn report(bin_index: u64, packets: u64) -> BinReport {
        let lane = |rate: f64, rate_id: usize, run: usize, swaps: u64| LaneReport {
            rate,
            rate_id,
            run,
            sampler: "random",
            sampled_flows: 3,
            sampled_packets: packets / 10,
            outcome: ComparisonOutcome {
                ranking_swaps: swaps,
                detection_swaps: 0,
                missed_top_flows: 0,
                ranking_pairs: 10,
                detection_pairs: 10,
            },
            topk: None,
            controlled: false,
        };
        BinReport {
            bin_index,
            bin_start: Timestamp::from_secs_f64(bin_index as f64 * 60.0),
            packets,
            flows: 7,
            lanes: vec![lane(0.1, 0, 0, 2), lane(0.1, 0, 1, 4), lane(0.5, 1, 0, 1)],
            controller: None,
            evictions: 0,
        }
    }

    #[test]
    fn retention_is_bounded_and_totals_keep_counting() {
        let mut window = RollingWindow::new(3);
        for i in 0..10 {
            window.accept(&report(i, 100));
        }
        assert_eq!(window.bins().count(), 3);
        assert_eq!(window.bins_seen(), 10);
        assert_eq!(window.packets_seen(), 1000);
        assert_eq!(window.window_packets(), 300);
        let indices: Vec<u64> = window.bins().map(|b| b.bin_index).collect();
        assert_eq!(indices, vec![7, 8, 9], "oldest bins evicted first");
    }

    #[test]
    fn per_rate_means_average_over_the_rate_lanes() {
        let mut window = RollingWindow::new(4);
        window.accept(&report(0, 100));
        let latest = window.latest().expect("one bin");
        assert_eq!(latest.rates.len(), 2);
        assert_eq!(latest.rates[0].lanes, 2);
        assert!((latest.rates[0].mean_ranking - 3.0).abs() < 1e-12);
        assert_eq!(latest.rates[1].lanes, 1);
        assert!((latest.rates[1].mean_ranking - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_well_formed_and_carries_the_latest_bin() {
        let mut window = RollingWindow::new(2);
        window.accept(&report(0, 100));
        window.accept(&report(1, 200));
        let mut json = String::new();
        window.render_json(&mut json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bins_seen\":2"));
        assert!(json.contains("\"latest\":{\"bin\":1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }

    #[test]
    fn empty_window_still_renders_a_snapshot() {
        let window = RollingWindow::new(2);
        let mut json = String::new();
        window.render_json(&mut json);
        assert!(json.contains("\"bins_seen\":0"));
        assert!(!json.contains("\"latest\""));
    }
}

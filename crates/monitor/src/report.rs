//! Reports emitted by the streaming monitor when a measurement bin closes.

use flowrank_core::metrics::ComparisonOutcome;
use flowrank_net::Timestamp;
use flowrank_topk::TopKEntry;

/// End-of-bin state of one lane's memory-bounded top-k backend.
///
/// Backends are keyed by 5-tuple regardless of the monitor's flow
/// definition (the `flowrank-topk` trackers only know [`TopKEntry`]'s
/// `FiveTuple` keys), so under a prefix definition these entries live in a
/// different key space than the bin's ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKReport {
    /// Backend name (`exact`, `space-saving`, …).
    pub backend: &'static str,
    /// Estimated top-`t` list, largest first.
    pub entries: Vec<TopKEntry>,
    /// Flow records the backend held when the bin closed.
    pub memory_entries: usize,
}

/// Per-lane outcome of one measurement bin.
///
/// A lane is one independent sampling run at one rate; a multi-run monitor
/// carries `runs × rates` lanes that all share the bin's single ground-truth
/// classification.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// Nominal sampling rate of the lane.
    pub rate: f64,
    /// Index of the lane's rate in the monitor's rate grid (0 when the
    /// monitor runs a single group at the template's own rate). Rate-keyed
    /// aggregation matches lanes on this id, not on `f64` equality of
    /// `rate`, so a requested rate that round-trips inexactly through
    /// arithmetic (`0.1 + 0.2 - 0.2 != 0.1`) still finds its lanes.
    pub rate_id: usize,
    /// Run index within the lane's rate (0-based).
    pub run: usize,
    /// Sampling discipline name.
    pub sampler: &'static str,
    /// Flows that survived sampling in this bin.
    pub sampled_flows: usize,
    /// Packets the lane retained in this bin.
    pub sampled_packets: u64,
    /// Swapped-pair counts against the bin's ground truth.
    pub outcome: ComparisonOutcome,
    /// End-of-bin top-k state, when the lane runs a backend.
    pub topk: Option<TopKReport>,
    /// Whether this lane's rate is steered by the monitor's controller
    /// (at most one lane per monitor; its `rate` field is the rate that
    /// was *applied* during this bin, so the trail of `rate` values across
    /// bins is the controller's audit log in every sink).
    pub controlled: bool,
}

impl LaneReport {
    /// The ranking metric value of this lane for this bin.
    pub fn ranking_metric(&self) -> f64 {
        self.outcome.ranking_swaps as f64
    }

    /// The detection metric value of this lane for this bin.
    pub fn detection_metric(&self) -> f64 {
        self.outcome.detection_swaps as f64
    }
}

/// One bin's entry in the controller's decision trail: what rate the
/// controlled lane ran, what the controller decided for the next bin, and
/// the feedback it decided on. Carried on [`BinReport::controller`] so
/// every sink (csv, ndjson, rate-curve, digest) can audit the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerTrail {
    /// Controller discipline name (`model-driven`, `aimd-slo`, …).
    pub controller: &'static str,
    /// Index of the controlled lane in [`BinReport::lanes`].
    pub lane: usize,
    /// Rate the controlled lane ran during this bin.
    pub applied_rate: f64,
    /// Rate the controller decided for the next bin.
    pub decided_rate: f64,
    /// Fraction of adjacent top-t pairs the controlled lane misranked.
    pub swapped_fraction: f64,
    /// Fraction of the true top-t set that changed since the previous bin.
    pub top_churn: f64,
}

/// Everything the monitor learned about one measurement bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BinReport {
    /// 0-based index of the bin since time zero.
    pub bin_index: u64,
    /// Wall-clock start of the bin.
    pub bin_start: Timestamp,
    /// Packets observed in the bin (before sampling).
    pub packets: u64,
    /// Distinct ground-truth flows in the bin.
    pub flows: usize,
    /// One report per lane, in lane order (rates outer, runs inner; the
    /// controlled lane, when one is attached, comes last).
    pub lanes: Vec<LaneReport>,
    /// The controller's decision for this bin, when one is attached.
    pub controller: Option<ControllerTrail>,
    /// Flow-table entries evicted during this bin by the monitor's memory
    /// budget (ground truth + all lanes), 0 when no budget is configured
    /// or the budget never bound. Part of the budget decision trail: under
    /// a fixed budget the eviction count per bin is deterministic and
    /// golden-pinnable.
    pub evictions: u64,
}

impl BinReport {
    /// Clears the per-bin payload while keeping the lane buffer's
    /// allocation, so a recycled report shell can be refilled without
    /// reallocating — both the serial close path and the worker runtime's
    /// sequencer reuse report shells through this.
    pub fn reset(&mut self) {
        self.lanes.clear();
        self.controller = None;
        self.evictions = 0;
    }

    /// Resolves a requested sampling rate to the [`LaneReport::rate_id`] of
    /// the closest rate any lane ran at, or `None` when no lane's rate is
    /// within a 1-part-in-10⁹ relative tolerance of the request.
    ///
    /// Matching by nearest-within-tolerance instead of exact `f64 ==` means
    /// a request like `0.1 + 0.2 - 0.2` (one ulp away from `0.1`) still
    /// finds the `0.1` lanes, while genuinely different grid rates — which
    /// are orders of magnitude apart in any real configuration — can never
    /// be conflated.
    pub fn rate_id_of(&self, rate: f64) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for lane in &self.lanes {
            let diff = (lane.rate - rate).abs();
            if best.is_none_or(|(b, _)| diff < b) {
                best = Some((diff, lane.rate_id));
            }
        }
        let (diff, id) = best?;
        let tolerance = 1e-9 * rate.abs().max(f64::MIN_POSITIVE);
        (diff == 0.0 || diff <= tolerance).then_some(id)
    }

    /// The lanes belonging to one sampling rate (resolved through
    /// [`BinReport::rate_id_of`], so inexact requests match their grid rate).
    pub fn lanes_at_rate(&self, rate: f64) -> impl Iterator<Item = &LaneReport> {
        let id = self.rate_id_of(rate);
        self.lanes
            .iter()
            .filter(move |lane| Some(lane.rate_id) == id)
    }

    /// The lanes belonging to one rate-grid index.
    pub fn lanes_at_rate_id(&self, rate_id: usize) -> impl Iterator<Item = &LaneReport> {
        self.lanes
            .iter()
            .filter(move |lane| lane.rate_id == rate_id)
    }

    /// Mean ranking metric across all lanes of `rate` in this bin.
    pub fn mean_ranking_at_rate(&self, rate: f64) -> f64 {
        let (sum, count) = self
            .lanes_at_rate(rate)
            .fold((0.0, 0usize), |(s, c), lane| {
                (s + lane.ranking_metric(), c + 1)
            });
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

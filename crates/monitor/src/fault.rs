//! The fault model of the drive pipeline: what can go wrong at a source or
//! sink, the recovery policy that decides what the monitor does about it,
//! and the health accounting that makes every recovery action observable.
//!
//! The types here back [`Monitor::try_drive`](crate::Monitor::try_drive),
//! the fault-aware form of [`Monitor::drive`](crate::Monitor::drive):
//!
//! * [`SourceError`] / [`SinkError`] — what a fallible source
//!   ([`PacketSource::try_next_chunk`](crate::PacketSource::try_next_chunk))
//!   or sink ([`ReportSink::emit`](crate::ReportSink::emit)) reports,
//!   classified by whether the stream can continue past it.
//! * [`DrivePolicy`] — the recovery contract: skip-and-count malformed
//!   records, bounded retry with exponential backoff for transient sink
//!   failures, an error budget, a stall detector, and the
//!   [`TimestampPolicy`] for out-of-order packets.
//! * [`DriveStats`] — the health report: every recovery action is tallied
//!   and returned on completion *and* carried on every [`DriveError`], so a
//!   drive is auditable whether it finished or aborted.
//! * [`DriveError`] — the clean abort: exactly one variant per documented
//!   failure class, each carrying the stats accumulated up to the abort.

use std::io;
use std::time::Duration;

use flowrank_net::NetError;

/// Why a fallible packet source could not produce its next chunk.
///
/// The two variants encode the one distinction the drive loop needs: whether
/// the source has advanced past the failure and can be asked for the next
/// chunk ([`SourceError::Malformed`]) or the stream cannot make further
/// progress ([`SourceError::Fatal`]). The pcap sources report framing errors
/// (truncated record header/payload, oversized record) as `Fatal` because a
/// broken record boundary loses resynchronisation; `Malformed` is for
/// formats — and injected faults — where the source can skip the bad record
/// and carry on.
#[derive(Debug)]
pub enum SourceError {
    /// One record was malformed, but the source has advanced past it:
    /// calling
    /// [`try_next_chunk`](crate::PacketSource::try_next_chunk) again
    /// continues the stream. Under
    /// [`DrivePolicy::skip_malformed`] the drive loop counts the skip in
    /// [`DriveStats::malformed_skipped`] and keeps going.
    Malformed(NetError),
    /// The stream cannot make further progress (I/O failure, lost record
    /// boundary). Always aborts the drive with [`DriveError::Source`].
    Fatal(NetError),
}

impl SourceError {
    /// Whether the source can continue past this error (i.e. it is
    /// [`SourceError::Malformed`]).
    pub fn is_recoverable(&self) -> bool {
        matches!(self, SourceError::Malformed(_))
    }

    /// The underlying decode/read error.
    pub fn net_error(&self) -> &NetError {
        match self {
            SourceError::Malformed(error) | SourceError::Fatal(error) => error,
        }
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Malformed(error) => write!(f, "malformed record: {error}"),
            SourceError::Fatal(error) => write!(f, "source failed: {error}"),
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.net_error())
    }
}

/// Why a fallible report sink could not take a report, classified by whether
/// retrying the same report can succeed.
///
/// Constructed with [`SinkError::transient`] / [`SinkError::permanent`]; the
/// `From<io::Error>` conversion classifies by [`io::ErrorKind`]
/// (`Interrupted`, `WouldBlock` and `TimedOut` are transient, everything
/// else permanent).
#[derive(Debug)]
pub struct SinkError {
    transient: bool,
    error: io::Error,
}

impl SinkError {
    /// A failure that may clear on retry (the drive loop re-emits the same
    /// report up to [`DrivePolicy::sink_retries`] times with exponential
    /// backoff).
    pub fn transient(error: io::Error) -> Self {
        SinkError {
            transient: true,
            error,
        }
    }

    /// A failure that will not clear on retry; aborts the drive with
    /// [`DriveError::Sink`] immediately.
    pub fn permanent(error: io::Error) -> Self {
        SinkError {
            transient: false,
            error,
        }
    }

    /// Whether retrying the same report can succeed.
    pub fn is_transient(&self) -> bool {
        self.transient
    }

    /// The underlying I/O error.
    pub fn io_error(&self) -> &io::Error {
        &self.error
    }

    /// Consumes the wrapper, returning the underlying I/O error.
    pub fn into_io_error(self) -> io::Error {
        self.error
    }
}

impl From<io::Error> for SinkError {
    fn from(error: io::Error) -> Self {
        let transient = matches!(
            error.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        );
        SinkError { transient, error }
    }
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let class = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "{class} sink failure: {}", self.error)
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// What the monitor does with packets whose timestamps regress — the
/// explicit form of the push contract's tolerance knob
/// ([`DrivePolicy::timestamps`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimestampPolicy {
    /// The historical default: debug builds fail fast on any regression
    /// (the `debug_assert` in `push_batch`); release builds silently fold
    /// the regressed packet into the current bin, uncounted. Costs nothing
    /// on the release hot path.
    #[default]
    DebugAssert,
    /// Fail fast in every build: `try_drive`/`try_push_batch_into` return
    /// [`DriveError::TimestampRegression`]; the infallible entry points
    /// panic. Costs one pass over each batch's timestamps.
    Reject,
    /// Fold the regressed packet into the current bin (the same tolerant
    /// behaviour release builds always had) but count every regression
    /// event into [`DriveStats::clamped_timestamps`] and the error budget.
    /// Skips the debug assert. Costs one pass over each batch's timestamps.
    ClampAndCount,
}

/// The recovery contract of [`Monitor::try_drive`](crate::Monitor::try_drive):
/// which faults are absorbed, how hard to retry, and when to give up.
///
/// [`DrivePolicy::default`] is **strict**: nothing is skipped, nothing is
/// retried, the first fault aborts. [`DrivePolicy::resilient`] is the
/// keep-running preset for unattended operation. Every field also has a
/// fluent setter.
///
/// ```
/// use flowrank_monitor::{DrivePolicy, TimestampPolicy};
/// use std::time::Duration;
///
/// let policy = DrivePolicy::resilient()
///     .sink_retries(5)
///     .sink_backoff(Duration::from_millis(2))
///     .error_budget(100)
///     .timestamps(TimestampPolicy::ClampAndCount);
/// assert!(policy.skip_malformed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrivePolicy {
    /// Skip recoverable ([`SourceError::Malformed`]) records, counting each
    /// into [`DriveStats::malformed_skipped`], instead of aborting on the
    /// first one. [`SourceError::Fatal`] always aborts.
    pub skip_malformed: bool,
    /// How many times a transient sink failure is retried (same report,
    /// re-rendered whole) before it is treated as permanent. `0` disables
    /// retry.
    pub sink_retries: u32,
    /// Delay before the first sink retry; doubles on every subsequent
    /// attempt up to [`DrivePolicy::sink_backoff_cap`]. Zero sleeps never.
    pub sink_backoff: Duration,
    /// Upper bound of the exponential sink backoff.
    pub sink_backoff_cap: Duration,
    /// Total recovery actions (skipped records + sink retries + clamped
    /// timestamps) the drive absorbs before aborting with
    /// [`DriveError::ErrorBudgetExhausted`]. Checked after each chunk.
    pub error_budget: u64,
    /// Minimum *consecutive* idle polls (a source answering
    /// [`SourcePoll::Pending`](crate::SourcePoll::Pending): "no data right
    /// now, not end of stream") before a stall can abort with
    /// [`DriveError::SourceStalled`]. The detector trips only when **both**
    /// this floor and [`DrivePolicy::stall_timeout`] are exceeded — the
    /// poll floor keeps one long scheduler hiccup from counting as a stall,
    /// the wall-clock threshold keeps a fast poll loop from burning through
    /// the floor in microseconds (the PR 8 detector counted only polls, so
    /// every live source tripped it almost instantly).
    pub stall_polls: u64,
    /// How long an idle streak must last, in wall-clock time, before the
    /// stall detector aborts (together with the [`DrivePolicy::stall_polls`]
    /// floor). [`Duration::ZERO`] restores the PR 8 poll-count-only
    /// behaviour — useful for deterministic tests.
    pub stall_timeout: Duration,
    /// How long the drive loop sleeps after each idle poll before asking
    /// the source again. [`Duration::ZERO`] busy-spins (the PR 8
    /// behaviour); the default paces idle polling at 1 ms so a quiet live
    /// source costs no CPU.
    pub idle_wait: Duration,
    /// What happens to packets whose timestamps regress.
    pub timestamps: TimestampPolicy,
}

impl Default for DrivePolicy {
    fn default() -> Self {
        DrivePolicy::strict()
    }
}

impl DrivePolicy {
    /// The strict policy (the default): no skipping, no retrying, the first
    /// fault aborts; stalls abort once an idle streak spans both
    /// [`DrivePolicy::DEFAULT_STALL_POLLS`] consecutive polls and
    /// [`DrivePolicy::DEFAULT_STALL_TIMEOUT`] of wall time; timestamps keep
    /// the historical [`TimestampPolicy::DebugAssert`] behaviour.
    pub fn strict() -> Self {
        DrivePolicy {
            skip_malformed: false,
            sink_retries: 0,
            sink_backoff: Duration::from_millis(1),
            sink_backoff_cap: Duration::from_millis(100),
            error_budget: u64::MAX,
            stall_polls: Self::DEFAULT_STALL_POLLS,
            stall_timeout: Self::DEFAULT_STALL_TIMEOUT,
            idle_wait: Self::DEFAULT_IDLE_WAIT,
            timestamps: TimestampPolicy::DebugAssert,
        }
    }

    /// The keep-running preset for unattended operation: skip malformed
    /// records, retry transient sink failures 3 times (1 ms backoff doubling
    /// to 100 ms), clamp-and-count regressed timestamps, abort only after
    /// 1024 absorbed recovery actions.
    pub fn resilient() -> Self {
        DrivePolicy {
            skip_malformed: true,
            sink_retries: 3,
            error_budget: 1024,
            timestamps: TimestampPolicy::ClampAndCount,
            ..DrivePolicy::strict()
        }
    }

    /// Default minimum consecutive idle polls before a stall can abort.
    /// Small by design: since the detector gained its wall-clock threshold
    /// ([`DrivePolicy::DEFAULT_STALL_TIMEOUT`]) the poll floor only has to
    /// prove the loop really is polling, not bound the stall duration — PR
    /// 8's poll-count-only detector needed 65 536 here and still tripped in
    /// microseconds on a busy-spinning live source.
    pub const DEFAULT_STALL_POLLS: u64 = 8;

    /// Default wall-clock length an idle streak must last before a stall
    /// aborts.
    pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

    /// Default sleep between idle polls.
    pub const DEFAULT_IDLE_WAIT: Duration = Duration::from_millis(1);

    /// Sets [`DrivePolicy::skip_malformed`].
    pub fn skip_malformed(mut self, skip: bool) -> Self {
        self.skip_malformed = skip;
        self
    }

    /// Sets [`DrivePolicy::sink_retries`].
    pub fn sink_retries(mut self, retries: u32) -> Self {
        self.sink_retries = retries;
        self
    }

    /// Sets [`DrivePolicy::sink_backoff`] (the first retry's delay).
    pub fn sink_backoff(mut self, backoff: Duration) -> Self {
        self.sink_backoff = backoff;
        self
    }

    /// Sets [`DrivePolicy::sink_backoff_cap`].
    pub fn sink_backoff_cap(mut self, cap: Duration) -> Self {
        self.sink_backoff_cap = cap;
        self
    }

    /// Sets [`DrivePolicy::error_budget`].
    pub fn error_budget(mut self, budget: u64) -> Self {
        self.error_budget = budget;
        self
    }

    /// Sets [`DrivePolicy::stall_polls`] (minimum 1).
    pub fn stall_polls(mut self, polls: u64) -> Self {
        self.stall_polls = polls.max(1);
        self
    }

    /// Sets [`DrivePolicy::stall_timeout`]. [`Duration::ZERO`] makes the
    /// stall detector purely poll-counted (the PR 8 semantics).
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Sets [`DrivePolicy::idle_wait`]. [`Duration::ZERO`] busy-spins.
    pub fn idle_wait(mut self, wait: Duration) -> Self {
        self.idle_wait = wait;
        self
    }

    /// Sets [`DrivePolicy::timestamps`].
    pub fn timestamps(mut self, policy: TimestampPolicy) -> Self {
        self.timestamps = policy;
        self
    }
}

/// The health report of one
/// [`Monitor::try_drive`](crate::Monitor::try_drive): how much work was done
/// and every recovery action the policy absorbed. Returned on completion and
/// carried on every [`DriveError`], so aborted drives are auditable too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Non-empty chunks pulled from the source.
    pub chunks: u64,
    /// Packets pushed through the monitor.
    pub packets: u64,
    /// Bin reports successfully delivered to the sink.
    pub reports: u64,
    /// Recoverable malformed records skipped under
    /// [`DrivePolicy::skip_malformed`].
    pub malformed_skipped: u64,
    /// Transient sink failures that were retried (each retry attempt counts
    /// once, whether or not it eventually succeeded).
    pub sink_retries: u64,
    /// Timestamp regressions folded into the current bin under
    /// [`TimestampPolicy::ClampAndCount`].
    pub clamped_timestamps: u64,
    /// Idle polls observed (a fallible source reporting "no data right
    /// now"). Not a recovery action — stalls are bounded separately by
    /// [`DrivePolicy::stall_polls`].
    pub idle_polls: u64,
}

impl DriveStats {
    /// Total recovery actions absorbed — the quantity the
    /// [`DrivePolicy::error_budget`] bounds.
    pub fn recoveries(&self) -> u64 {
        self.malformed_skipped + self.sink_retries + self.clamped_timestamps
    }
}

/// Why a [`Monitor::try_drive`](crate::Monitor::try_drive) aborted. Every
/// variant carries the [`DriveStats`] accumulated up to the abort
/// ([`DriveError::stats`]).
#[derive(Debug)]
pub enum DriveError {
    /// The source failed: a fatal error, or a malformed record the policy
    /// does not skip.
    Source {
        /// The source-side failure.
        error: SourceError,
        /// Work done and recoveries absorbed before the abort.
        stats: DriveStats,
    },
    /// The sink failed permanently (or a transient failure exhausted its
    /// retries).
    Sink {
        /// The sink-side failure.
        error: SinkError,
        /// Work done and recoveries absorbed before the abort.
        stats: DriveStats,
    },
    /// Absorbed recovery actions exceeded [`DrivePolicy::error_budget`].
    ErrorBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
        /// Work done and recoveries absorbed before the abort; its
        /// [`DriveStats::recoveries`] exceeds `budget`.
        stats: DriveStats,
    },
    /// The source reported "no data" for at least
    /// [`DrivePolicy::stall_polls`] consecutive polls spanning at least
    /// [`DrivePolicy::stall_timeout`] of wall time — source starvation
    /// surfaced instead of hanging.
    SourceStalled {
        /// Consecutive idle polls observed when the detector tripped.
        idle_polls: u64,
        /// Wall-clock length of the idle streak when the detector tripped.
        stalled_for: Duration,
        /// Work done and recoveries absorbed before the abort.
        stats: DriveStats,
    },
    /// A batch violated the non-decreasing timestamp contract under
    /// [`TimestampPolicy::Reject`].
    TimestampRegression {
        /// The largest timestamp seen before the regression, in nanoseconds.
        prev_nanos: u64,
        /// The regressing timestamp, in nanoseconds.
        ts_nanos: u64,
        /// Work done and recoveries absorbed before the abort.
        stats: DriveStats,
    },
    /// A worker (or sequencer) thread of the pipelined runtime panicked.
    /// The pool has been drained and the monitor is poisoned: further
    /// fallible calls return this error again, infallible calls panic, and
    /// dropping the monitor is safe. The sequencer is reported as worker
    /// index `threads`.
    WorkerPanicked {
        /// Index of the thread that panicked (`0..threads` for workers,
        /// `threads` for the sequencer).
        worker: usize,
        /// The bin the monitor was filling when the failure surfaced.
        bin: u64,
        /// Work done and recoveries absorbed before the abort.
        stats: DriveStats,
    },
}

impl DriveError {
    /// The health report accumulated up to the abort.
    pub fn stats(&self) -> &DriveStats {
        match self {
            DriveError::Source { stats, .. }
            | DriveError::Sink { stats, .. }
            | DriveError::ErrorBudgetExhausted { stats, .. }
            | DriveError::SourceStalled { stats, .. }
            | DriveError::TimestampRegression { stats, .. }
            | DriveError::WorkerPanicked { stats, .. } => stats,
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut DriveStats {
        match self {
            DriveError::Source { stats, .. }
            | DriveError::Sink { stats, .. }
            | DriveError::ErrorBudgetExhausted { stats, .. }
            | DriveError::SourceStalled { stats, .. }
            | DriveError::TimestampRegression { stats, .. }
            | DriveError::WorkerPanicked { stats, .. } => stats,
        }
    }
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Source { error, .. } => write!(f, "drive aborted: {error}"),
            DriveError::Sink { error, .. } => write!(f, "drive aborted: {error}"),
            DriveError::ErrorBudgetExhausted { budget, stats } => write!(
                f,
                "drive aborted: error budget exhausted ({} recoveries > budget {budget})",
                stats.recoveries()
            ),
            DriveError::SourceStalled {
                idle_polls,
                stalled_for,
                ..
            } => write!(
                f,
                "drive aborted: source stalled ({idle_polls} consecutive idle polls over {:.3}s)",
                stalled_for.as_secs_f64()
            ),
            DriveError::TimestampRegression {
                prev_nanos,
                ts_nanos,
                ..
            } => write!(
                f,
                "drive aborted: timestamp regressed ({ts_nanos} ns after {prev_nanos} ns); \
                 the push contract requires non-decreasing timestamps"
            ),
            DriveError::WorkerPanicked { worker, bin, .. } => write!(
                f,
                "drive aborted: worker {worker} panicked while filling bin {bin}; \
                 the monitor is poisoned"
            ),
        }
    }
}

impl std::error::Error for DriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriveError::Source { error, .. } => Some(error),
            DriveError::Sink { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_error_classifies_recoverability() {
        let soft = SourceError::Malformed(NetError::MalformedPacket { reason: "injected" });
        let hard = SourceError::Fatal(NetError::MalformedPacket {
            reason: "truncated pcap record header",
        });
        assert!(soft.is_recoverable());
        assert!(!hard.is_recoverable());
        assert!(soft.to_string().starts_with("malformed record:"));
        assert!(hard.to_string().starts_with("source failed:"));
    }

    #[test]
    fn sink_error_classifies_io_kinds() {
        let transient = SinkError::from(io::Error::new(io::ErrorKind::Interrupted, "try again"));
        assert!(transient.is_transient());
        let permanent = SinkError::from(io::Error::new(io::ErrorKind::BrokenPipe, "gone"));
        assert!(!permanent.is_transient());
        assert!(SinkError::transient(io::Error::other("x")).is_transient());
        assert!(!SinkError::permanent(io::Error::other("x")).is_transient());
    }

    #[test]
    fn default_policy_is_strict() {
        let policy = DrivePolicy::default();
        assert!(!policy.skip_malformed);
        assert_eq!(policy.sink_retries, 0);
        assert_eq!(policy.error_budget, u64::MAX);
        assert_eq!(policy.timestamps, TimestampPolicy::DebugAssert);
        assert_eq!(policy, DrivePolicy::strict());
    }

    #[test]
    fn resilient_policy_absorbs_faults() {
        let policy = DrivePolicy::resilient();
        assert!(policy.skip_malformed);
        assert_eq!(policy.sink_retries, 3);
        assert_eq!(policy.error_budget, 1024);
        assert_eq!(policy.timestamps, TimestampPolicy::ClampAndCount);
    }

    #[test]
    fn stats_recoveries_sum_the_budgeted_counters() {
        let stats = DriveStats {
            malformed_skipped: 2,
            sink_retries: 3,
            clamped_timestamps: 4,
            idle_polls: 100,
            ..DriveStats::default()
        };
        assert_eq!(stats.recoveries(), 9, "idle polls are not recoveries");
    }

    #[test]
    fn drive_error_carries_and_displays_its_stats() {
        let stats = DriveStats {
            malformed_skipped: 7,
            ..DriveStats::default()
        };
        let error = DriveError::ErrorBudgetExhausted { budget: 5, stats };
        assert_eq!(error.stats().malformed_skipped, 7);
        assert!(error.to_string().contains("7 recoveries > budget 5"));
        let panic = DriveError::WorkerPanicked {
            worker: 2,
            bin: 9,
            stats: DriveStats::default(),
        };
        assert!(panic.to_string().contains("worker 2"));
        assert!(panic.to_string().contains("bin 9"));
    }
}

//! Runtime-selectable sampler and top-k backend specifications.
//!
//! A monitor deployed on a live link chooses its sampling discipline and its
//! flow-memory algorithm from configuration, not at compile time. These two
//! enums are the serialisable "configuration" half of that choice; `build`
//! turns them into the boxed trait objects the monitor lanes drive.

use flowrank_net::Timestamp;
use flowrank_sampling::{
    AdaptiveRateSampler, FlowSampler, PacketSampler, PeriodicSampler, RandomSampler,
    SmartPacketSampler, StratifiedSampler,
};
use flowrank_topk::{
    ExactTopK, MultistageFilter, SampleAndHold, SortedListMemory, SpaceSaving, TopKTracker,
};

/// Which packet-sampling discipline a monitor lane runs.
///
/// Covers every sampler in `flowrank-sampling`: the paper's random model,
/// the router-practical periodic and stratified variants, whole-flow
/// sampling, the packet-level smart-sampling adaptation and the adaptive
/// budget-tracking sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerSpec {
    /// Independent Bernoulli(p) packet sampling — the paper's model.
    Random {
        /// Per-packet keep probability.
        rate: f64,
    },
    /// Deterministic 1-in-N sampling (periodic), optionally with a random
    /// initial phase per measurement interval.
    Periodic {
        /// Nominal sampling rate (period = round(1/rate)).
        rate: f64,
        /// Randomise the phase at the start of each interval.
        random_phase: bool,
    },
    /// One uniformly chosen packet per stratum of N packets.
    Stratified {
        /// Nominal sampling rate (stratum = round(1/rate)).
        rate: f64,
    },
    /// Whole-flow sampling: a hash of the 5-tuple decides once per flow.
    Flow {
        /// Per-flow keep probability.
        rate: f64,
    },
    /// Packet-level smart sampling: keep probability grows with the flow's
    /// running size, `min(1, count/threshold)`.
    Smart {
        /// Size threshold `z` in packets.
        threshold: f64,
    },
    /// Adaptive-rate sampling against a per-interval packet budget.
    Adaptive {
        /// Starting sampling probability.
        initial_rate: f64,
        /// Target number of sampled packets per adjustment interval.
        budget_per_interval: u64,
        /// Length of the adjustment interval.
        interval: Timestamp,
    },
}

impl SamplerSpec {
    /// Retargets the spec to a new nominal rate — how the monitor fans one
    /// spec out across a whole rate grid. Specs without a rate parameter
    /// ([`SamplerSpec::Smart`]) are returned unchanged; the adaptive sampler
    /// reinterprets the rate as its starting point.
    pub fn with_rate(self, rate: f64) -> Self {
        match self {
            SamplerSpec::Random { .. } => SamplerSpec::Random { rate },
            SamplerSpec::Periodic { random_phase, .. } => {
                SamplerSpec::Periodic { rate, random_phase }
            }
            SamplerSpec::Stratified { .. } => SamplerSpec::Stratified { rate },
            SamplerSpec::Flow { .. } => SamplerSpec::Flow { rate },
            SamplerSpec::Smart { threshold } => SamplerSpec::Smart { threshold },
            SamplerSpec::Adaptive {
                budget_per_interval,
                interval,
                ..
            } => SamplerSpec::Adaptive {
                initial_rate: rate,
                budget_per_interval,
                interval,
            },
        }
    }

    /// The nominal sampling rate of the spec (an upper-bound proxy of `1` for
    /// smart sampling, whose realised rate is traffic dependent).
    pub fn nominal_rate(&self) -> f64 {
        match *self {
            SamplerSpec::Random { rate }
            | SamplerSpec::Periodic { rate, .. }
            | SamplerSpec::Stratified { rate }
            | SamplerSpec::Flow { rate } => rate,
            SamplerSpec::Smart { threshold } => SmartPacketSampler::pre_traffic_rate(threshold),
            SamplerSpec::Adaptive { initial_rate, .. } => initial_rate,
        }
    }

    /// Short human-readable name of the discipline.
    pub fn name(&self) -> &'static str {
        match self {
            SamplerSpec::Random { .. } => "random",
            SamplerSpec::Periodic { .. } => "periodic",
            SamplerSpec::Stratified { .. } => "stratified",
            SamplerSpec::Flow { .. } => "flow-sampling",
            SamplerSpec::Smart { .. } => "smart",
            SamplerSpec::Adaptive { .. } => "adaptive",
        }
    }

    /// Instantiates the sampler. `seed` parameterises samplers that carry
    /// their own per-lane randomness (currently the flow sampler's hash
    /// seed); the per-packet coin flips come from the lane RNG instead.
    pub fn build(&self, seed: u64) -> Box<dyn PacketSampler + Send> {
        match *self {
            SamplerSpec::Random { rate } => Box::new(RandomSampler::new(rate)),
            SamplerSpec::Periodic { rate, random_phase } => {
                let sampler = PeriodicSampler::with_rate(rate);
                Box::new(if random_phase {
                    sampler.with_random_phase()
                } else {
                    sampler
                })
            }
            SamplerSpec::Stratified { rate } => Box::new(StratifiedSampler::with_rate(rate)),
            SamplerSpec::Flow { rate } => Box::new(FlowSampler::new(rate, seed)),
            SamplerSpec::Smart { threshold } => Box::new(SmartPacketSampler::new(threshold)),
            SamplerSpec::Adaptive {
                initial_rate,
                budget_per_interval,
                interval,
            } => Box::new(AdaptiveRateSampler::new(
                initial_rate,
                budget_per_interval,
                interval,
            )),
        }
    }
}

/// Which memory-bounded top-k backend a monitor lane feeds with its sampled
/// packets — the paper's first future-work direction (sampling in front of a
/// heavy-hitter mechanism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopKSpec {
    /// Unbounded exact counting (the idealised monitor).
    Exact,
    /// Bounded sorted list with bottom eviction (Jedwab–Phaal–Pinna).
    SortedList {
        /// Maximum number of tracked flows.
        capacity: usize,
    },
    /// Space-Saving (Metwally et al. 2005).
    SpaceSaving {
        /// Number of counters.
        capacity: usize,
    },
    /// Estan–Varghese sample-and-hold.
    SampleAndHold {
        /// Probability that a packet of an untracked flow creates an entry.
        entry_probability: f64,
        /// Maximum number of flow entries.
        capacity: usize,
    },
    /// Estan–Varghese parallel multistage filter with exact memory behind it.
    Multistage {
        /// Number of parallel stages.
        stages: usize,
        /// Counters per stage.
        counters_per_stage: usize,
        /// Promotion threshold in packets.
        threshold: u64,
        /// Capacity of the exact flow memory.
        memory_capacity: usize,
    },
}

impl TopKSpec {
    /// Short human-readable name of the backend.
    pub fn name(&self) -> &'static str {
        match self {
            TopKSpec::Exact => "exact",
            TopKSpec::SortedList { .. } => "sorted-list",
            TopKSpec::SpaceSaving { .. } => "space-saving",
            TopKSpec::SampleAndHold { .. } => "sample-and-hold",
            TopKSpec::Multistage { .. } => "multistage-filter",
        }
    }

    /// Instantiates the tracker.
    pub fn build(&self) -> Box<dyn TopKTracker + Send> {
        match *self {
            TopKSpec::Exact => Box::new(ExactTopK::new()),
            TopKSpec::SortedList { capacity } => Box::new(SortedListMemory::new(capacity)),
            TopKSpec::SpaceSaving { capacity } => Box::new(SpaceSaving::new(capacity)),
            TopKSpec::SampleAndHold {
                entry_probability,
                capacity,
            } => Box::new(SampleAndHold::new(entry_probability, capacity)),
            TopKSpec::Multistage {
                stages,
                counters_per_stage,
                threshold,
                memory_capacity,
            } => Box::new(MultistageFilter::new(
                stages,
                counters_per_stage,
                threshold,
                memory_capacity,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sampler_kind_builds_and_reports_its_name() {
        let specs = [
            SamplerSpec::Random { rate: 0.1 },
            SamplerSpec::Periodic {
                rate: 0.1,
                random_phase: true,
            },
            SamplerSpec::Stratified { rate: 0.1 },
            SamplerSpec::Flow { rate: 0.1 },
            SamplerSpec::Smart { threshold: 10.0 },
            SamplerSpec::Adaptive {
                initial_rate: 0.1,
                budget_per_interval: 100,
                interval: Timestamp::from_secs_f64(1.0),
            },
        ];
        let names: Vec<&str> = specs
            .iter()
            .map(|spec| {
                let sampler = spec.build(1);
                assert_eq!(sampler.name(), spec.name());
                spec.name()
            })
            .collect();
        assert_eq!(
            names,
            [
                "random",
                "periodic",
                "stratified",
                "flow-sampling",
                "smart",
                "adaptive"
            ]
        );
    }

    #[test]
    fn with_rate_retargets_every_rated_spec() {
        assert_eq!(
            SamplerSpec::Random { rate: 0.1 }.with_rate(0.5),
            SamplerSpec::Random { rate: 0.5 }
        );
        assert_eq!(
            SamplerSpec::Periodic {
                rate: 0.1,
                random_phase: true
            }
            .with_rate(0.5)
            .nominal_rate(),
            0.5
        );
        assert_eq!(
            SamplerSpec::Stratified { rate: 0.1 }
                .with_rate(0.5)
                .nominal_rate(),
            0.5
        );
        assert_eq!(
            SamplerSpec::Flow { rate: 0.1 }
                .with_rate(0.5)
                .nominal_rate(),
            0.5
        );
        // Smart sampling has no rate parameter — retargeting is a no-op.
        assert_eq!(
            SamplerSpec::Smart { threshold: 20.0 }.with_rate(0.5),
            SamplerSpec::Smart { threshold: 20.0 }
        );
        let adaptive = SamplerSpec::Adaptive {
            initial_rate: 0.1,
            budget_per_interval: 7,
            interval: Timestamp::from_secs_f64(2.0),
        };
        assert_eq!(adaptive.with_rate(0.3).nominal_rate(), 0.3);
    }

    #[test]
    fn every_topk_backend_builds() {
        let specs = [
            TopKSpec::Exact,
            TopKSpec::SortedList { capacity: 8 },
            TopKSpec::SpaceSaving { capacity: 8 },
            TopKSpec::SampleAndHold {
                entry_probability: 0.1,
                capacity: 8,
            },
            TopKSpec::Multistage {
                stages: 2,
                counters_per_stage: 64,
                threshold: 10,
                memory_capacity: 8,
            },
        ];
        for spec in specs {
            let tracker = spec.build();
            assert_eq!(tracker.name(), spec.name());
            assert_eq!(tracker.memory_entries(), 0);
        }
    }

    #[test]
    fn smart_nominal_rate_proxy() {
        assert_eq!(SamplerSpec::Smart { threshold: 0.5 }.nominal_rate(), 1.0);
        assert!((SamplerSpec::Smart { threshold: 100.0 }.nominal_rate() - 0.01).abs() < 1e-12);
    }
}

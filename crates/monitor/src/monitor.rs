//! The push-based streaming monitor.
//!
//! [`Monitor::push`] is the single entry point every packet of a live link
//! goes through. The monitor classifies the packet into the bin's
//! ground-truth flow table, offers it to every sampling lane, feeds retained
//! packets into the lanes' sampled tables (and optional top-k backends), and
//! closes measurement bins automatically on timestamp boundaries. Closing a
//! bin ranks the ground truth **once** and scores every lane against that
//! single ranking — with `runs × rates` lanes this removes the
//! `runs × rates` redundant reclassifications the batch API used to pay.

use std::ops::Range;
use std::time::{Duration, Instant};

use flowrank_control::{BinObservation, ControllerSpec, RateController};
use flowrank_core::metrics::{GroundTruthRanking, SizedFlow};
use flowrank_net::{AnyFlowKey, FlowDefinition, FlowTable, PacketBatch, PacketRecord, Timestamp};
use flowrank_sampling::SamplerStage;
use flowrank_stats::rng::{derive_seeds, Pcg64, SeedableRng};
use flowrank_topk::TopKTracker;

use crate::fault::{DriveError, DrivePolicy, DriveStats, SinkError, TimestampPolicy};
use crate::pipeline::{Collect, DriveSummary, PacketSource, ReportSink, SourcePoll};
use crate::report::{BinReport, ControllerTrail, LaneReport, TopKReport};
use crate::runtime::{PipelinedRuntime, RuntimeFailure};
use crate::spec::{SamplerSpec, TopKSpec};

/// Salt mixed into a lane's seed for its top-k backend RNG, so that backend
/// coin flips (sample-and-hold) never perturb the sampling stream.
const TRACKER_SEED_SALT: u64 = 0x70B5_A17E_D00D_F00D;

/// Salt mixed into the master seed for the controlled lane, so attaching a
/// controller never perturbs the static lanes' derived seed streams.
const CONTROLLER_SEED_SALT: u64 = 0xC011_7801_5EED_CAFE;

/// Default for [`MonitorBuilder::parallel_segment_min`]: the smallest
/// within-bin segment a multi-threaded monitor hands to its worker pool. A
/// packet costs tens of nanoseconds per lane while a channel hand-off costs
/// on the order of a microsecond per worker, so segments below roughly a
/// thousand packets are cheaper to process on the calling thread. Results
/// are bit-identical either way — the knob only moves work between threads.
pub const DEFAULT_PARALLEL_SEGMENT_MIN: usize = 1024;

/// Fluent builder for [`Monitor`].
///
/// ```
/// use flowrank_monitor::{MonitorBuilder, SamplerSpec};
/// use flowrank_net::{FlowDefinition, Timestamp};
///
/// let monitor = MonitorBuilder::new()
///     .flow_definition(FlowDefinition::FiveTuple)
///     .sampler(SamplerSpec::Random { rate: 0.01 })
///     .rates(&[0.01, 0.1])
///     .runs(30)
///     .bin_length(Timestamp::from_secs_f64(60.0))
///     .top_t(10)
///     .seed(2026)
///     .build();
/// assert_eq!(monitor.lane_count(), 60);
/// ```
#[derive(Debug, Clone)]
pub struct MonitorBuilder {
    flow_definition: FlowDefinition,
    sampler: SamplerSpec,
    rates: Option<Vec<f64>>,
    runs: usize,
    topk: Option<TopKSpec>,
    bin_length: Timestamp,
    top_t: usize,
    seed: u64,
    threads: usize,
    parallel_segment_min: usize,
    controller: Option<ControllerSpec>,
    drive_policy: DrivePolicy,
    lane_panic_after: Option<u64>,
    flow_budget: Option<usize>,
}

impl Default for MonitorBuilder {
    fn default() -> Self {
        MonitorBuilder {
            flow_definition: FlowDefinition::FiveTuple,
            sampler: SamplerSpec::Random { rate: 0.01 },
            rates: None,
            runs: 1,
            topk: None,
            bin_length: Timestamp::from_secs_f64(60.0),
            top_t: 10,
            seed: 0xF10A_4A9C,
            threads: 1,
            parallel_segment_min: DEFAULT_PARALLEL_SEGMENT_MIN,
            controller: None,
            drive_policy: DrivePolicy::strict(),
            lane_panic_after: None,
            flow_budget: None,
        }
    }
}

impl MonitorBuilder {
    /// Starts from the paper's defaults: 5-tuple flows, 1% random sampling,
    /// one run, 60-second bins, top 10.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow definition used for both ground truth and sampled classification.
    pub fn flow_definition(mut self, definition: FlowDefinition) -> Self {
        self.flow_definition = definition;
        self
    }

    /// Sampling discipline template for every lane.
    pub fn sampler(mut self, spec: SamplerSpec) -> Self {
        self.sampler = spec;
        self
    }

    /// Fans the sampler template out across a grid of nominal rates (one
    /// group of [`MonitorBuilder::runs`] lanes per rate). Without this call
    /// the monitor runs the template at its own rate in a single group.
    pub fn rates(mut self, rates: &[f64]) -> Self {
        self.rates = Some(rates.to_vec());
        self
    }

    /// Independent sampling runs per rate (the paper uses 30).
    pub fn runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Attaches a memory-bounded top-k backend to every lane; the backend is
    /// fed exactly the packets the lane's sampler retains.
    ///
    /// The `flowrank-topk` trackers are keyed by 5-tuple, so the backend
    /// always tracks 5-tuple flows — even when the monitor's
    /// [`MonitorBuilder::flow_definition`] is a prefix definition, in which
    /// case the [`crate::TopKReport`] entries live in a different key space
    /// than the bin's prefix ranking.
    pub fn topk(mut self, spec: TopKSpec) -> Self {
        self.topk = Some(spec);
        self
    }

    /// Measurement-bin length. [`Timestamp::ZERO`] means a single unbounded
    /// bin closed only by [`Monitor::finish`].
    pub fn bin_length(mut self, bin_length: Timestamp) -> Self {
        self.bin_length = bin_length;
        self
    }

    /// Number of top flows the monitor reports.
    pub fn top_t(mut self, top_t: usize) -> Self {
        self.top_t = top_t;
        self
    }

    /// Master seed. Per-lane seeds are derived deterministically from it (and
    /// from each rate), so a monitor is reproducible bit-for-bit.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a closed-loop rate controller (`flowrank-control`): one
    /// extra *controlled* lane is appended after the static lanes, running
    /// the sampler template at the controller's initial rate. Each time a
    /// bin closes, the monitor derives a [`BinObservation`] from the bin's
    /// report and ground truth, feeds it to the controller, records the
    /// decision on [`BinReport::controller`], and — when the decided rate
    /// differs from the applied one — rebuilds the controlled lane's
    /// sampler at the new rate from the lane's fixed seed before the next
    /// bin's packets arrive.
    ///
    /// The control step runs single-threaded after lane scoring, and the
    /// controlled lane's seed is salted off the master seed, so attaching
    /// a controller neither perturbs the static lanes nor breaks the
    /// monitor's bit-identical-across-paths guarantees.
    pub fn controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = Some(spec);
        self
    }

    /// Worker threads for batch processing (default 1).
    ///
    /// Above 1, `build()` spawns a **persistent pipelined worker runtime**
    /// (torn down when the monitor drops): the calling thread becomes the
    /// ingest stage — splitting batches on bin boundaries, deriving keys,
    /// routing packets to ground-truth shards — and broadcasts keyed
    /// segments over bounded queues to one classification worker per
    /// thread. Worker *w* owns ground-truth shard *w* and every lane with
    /// index ≡ *w* (mod threads); at each bin seal the workers score their
    /// lanes in parallel while a single sequencer thread merges the shards,
    /// ranks the ground truth once, reassembles the [`BinReport`] in lane
    /// order and runs the control step. Ingestion, classification and lane
    /// scoring overlap instead of barrier-stepping, and the bounded queues
    /// provide backpressure so peak memory stays flows + in-flight windows.
    ///
    /// Every lane still sees every packet in order with its own RNG, so
    /// reports are **bit-identical** across thread counts and ingestion
    /// paths (pinned by the `streaming_equivalence` suite and all 216
    /// scenario-conformance goldens). Segments smaller than
    /// [`MonitorBuilder::parallel_segment_min`] — per-packet [`Monitor::push`]
    /// in particular — are processed on the calling thread, where a channel
    /// round-trip would cost more than the work. `0` means one thread per
    /// available CPU.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }

    /// Smallest within-bin segment (in packets) a multi-threaded monitor
    /// hands to its worker pool; smaller segments are processed inline on
    /// the calling thread (default
    /// [`DEFAULT_PARALLEL_SEGMENT_MIN`] = 1024).
    ///
    /// This is a pure performance knob: reports are bit-identical on both
    /// sides of the threshold. Lower it (e.g. to 1) to force every segment
    /// through the worker pool, raise it (e.g. to `usize::MAX`) to keep all
    /// classification on the calling thread while still scoring bin seals
    /// on the pool. Ignored when `threads(1)`.
    pub fn parallel_segment_min(mut self, min_packets: usize) -> Self {
        self.parallel_segment_min = min_packets.max(1);
        self
    }

    /// Recovery policy governing [`Monitor::try_drive`] and the fallible
    /// entry points ([`Monitor::try_push_batch_into`]): which source faults
    /// are skipped, how transient sink failures are retried, the error
    /// budget, the stall threshold, and how out-of-order timestamps are
    /// handled ([`TimestampPolicy`]). Defaults to [`DrivePolicy::strict`],
    /// which reproduces the historical fail-fast behaviour exactly.
    ///
    /// The policy never changes *what* the monitor computes — a fault-free
    /// run under any policy is bit-identical to the default.
    pub fn drive_policy(mut self, policy: DrivePolicy) -> Self {
        self.drive_policy = policy;
        self
    }

    /// Caps every flow table in the monitor (ground truth and all lanes) at
    /// `budget` entries, evicting the coldest flows
    /// ([`flowrank_net::FlowTable::evict_to_budget`]) whenever a processed
    /// segment pushes a table over the cap. This is the per-tenant memory
    /// budget behind the fleet layer: peak flow-state memory becomes
    /// `O(budget × lanes)` regardless of how many distinct flows a bin
    /// carries.
    ///
    /// Eviction is space-saving-style *state* shedding: bin totals
    /// (`packets`, bytes) keep counting everything observed, only per-flow
    /// entries are dropped, and an evicted flow that returns restarts from
    /// zero. Victim order is deterministic (coldest first, packed-key
    /// tie-break), so budgeted reports are a pure function of the packet
    /// sequence and the budget — and the per-bin eviction count is carried
    /// on [`BinReport::evictions`] as an auditable, golden-pinnable trail.
    /// A budget changes *what* the monitor reports (flows below the cap's
    /// waterline disappear from rankings); it is a memory/fidelity
    /// trade-off, not a pure performance knob.
    ///
    /// Only the serial engine enforces budgets; combining `flow_budget`
    /// with [`MonitorBuilder::threads`]` > 1` panics at `build()`. (Fleet
    /// tenants are always serial — the fleet's own worker pool provides the
    /// parallelism.)
    pub fn flow_budget(mut self, budget: usize) -> Self {
        self.flow_budget = Some(budget.max(1));
        self
    }

    /// Chaos-testing hook: makes lane 0 panic once it has been offered more
    /// than `packets` packets. With `threads(n > 1)` the panic lands on a
    /// worker thread and exercises the containment path
    /// ([`DriveError::WorkerPanicked`], poisoned-but-droppable monitor); the
    /// chaos suite drives it through `flowrank_sim::faults`. Not for
    /// production use.
    pub fn inject_lane_panic_after(mut self, packets: u64) -> Self {
        self.lane_panic_after = Some(packets);
        self
    }

    /// Builds the monitor.
    pub fn build(self) -> Monitor {
        let mut lanes = Vec::new();
        let budget = self.flow_budget.map(FlowBudget::new);
        match &self.rates {
            None => {
                // Single group at the template's own rate; the lane seed is
                // the master seed, matching the legacy single-run engine.
                let seeds = derive_seeds(self.seed, self.runs);
                let rate_tag = self.sampler.nominal_rate();
                for (run, &derived) in seeds.iter().enumerate() {
                    let seed = if self.runs == 1 { self.seed } else { derived };
                    lanes.push(Lane::new(
                        &self.sampler,
                        rate_tag,
                        0,
                        self.topk.as_ref(),
                        run,
                        seed,
                        budget,
                    ));
                }
            }
            Some(rates) => {
                for (rate_id, &rate) in rates.iter().enumerate() {
                    // Same derivation the batch experiment always used, so
                    // fanned-out lanes reproduce its per-run streams exactly.
                    let seeds = derive_seeds(self.seed ^ rate.to_bits(), self.runs);
                    let spec = self.sampler.with_rate(rate);
                    // Lanes are tagged with the *requested* grid rate (and
                    // its index), not the spec's own nominal rate: rate-keyed
                    // aggregation must find its lanes even for disciplines
                    // whose retargeting is a no-op (smart sampling).
                    for (run, &seed) in seeds.iter().enumerate() {
                        lanes.push(Lane::new(
                            &spec,
                            rate,
                            rate_id,
                            self.topk.as_ref(),
                            run,
                            seed,
                            budget,
                        ));
                    }
                }
            }
        }
        let controller = self.controller.map(|spec| {
            // The controlled lane rides after the static grid with its own
            // rate_id, so rate-keyed aggregation (and the RateCurve sink)
            // sees it as one more rate group rather than conflating it
            // with a static rate it happens to pass through.
            let rate_id = lanes.last().map_or(0, |lane| lane.rate_id + 1);
            let initial_rate = spec.initial_rate();
            let lane_spec = self.sampler.with_rate(initial_rate);
            let lane_index = lanes.len();
            lanes.push(Lane::new(
                &lane_spec,
                initial_rate,
                rate_id,
                self.topk.as_ref(),
                0,
                self.seed ^ CONTROLLER_SEED_SALT,
                budget,
            ));
            ControllerState {
                controller: spec.build(),
                lane: lane_index,
                template: self.sampler,
                applied_rate: initial_rate,
                prev_top: Vec::new(),
                observation: BinObservation::default(),
            }
        });
        if let Some(limit) = self.lane_panic_after {
            if let Some(lane) = lanes.first_mut() {
                lane.panic_after = Some(limit);
            }
        }
        let threads = self.threads.max(1);
        let engine = if threads > 1 {
            assert!(
                budget.is_none(),
                "flow_budget requires threads(1): budgets are enforced by the \
                 serial engine (fleet tenants parallelise at the fleet level)"
            );
            Engine::Pipelined(PipelinedRuntime::spawn(
                lanes, controller, threads, self.top_t,
            ))
        } else {
            Engine::Serial(SerialEngine {
                ground_truth: FlowTable::new(),
                lanes,
                controller,
                flow_budget: budget,
                evictions: 0,
            })
        };
        Monitor {
            flow_definition: self.flow_definition,
            bin_length: self.bin_length,
            top_t: self.top_t,
            engine,
            current_bin: 0,
            saw_packet: false,
            threads,
            parallel_segment_min: self.parallel_segment_min,
            segments_inline: 0,
            segments_dispatched: 0,
            scratch_batch: PacketBatch::with_capacity(1),
            scratch_keys: Vec::new(),
            scratch_report: BinReport::default(),
            last_ts_nanos: None,
            drive_policy: self.drive_policy,
            clamped_timestamps: 0,
            poisoned: None,
        }
    }
}

/// Closed-loop state riding on the monitor: the controller itself plus
/// everything needed to derive its per-bin observation and retune the
/// controlled lane.
#[derive(Debug)]
pub(crate) struct ControllerState {
    controller: Box<dyn RateController + Send>,
    /// Index of the controlled lane in the monitor's lane list.
    pub(crate) lane: usize,
    /// Sampler template re-targeted (`SamplerSpec::with_rate`) at every
    /// retune.
    template: SamplerSpec,
    /// Rate the controlled lane is currently running.
    applied_rate: f64,
    /// True top-t keys of the previous bin, backing the churn signal.
    prev_top: Vec<AnyFlowKey>,
    /// Recycled observation buffer (its `top_sizes` vector in particular),
    /// so steady-state control steps stay allocation-free.
    observation: BinObservation,
}

impl ControllerState {
    pub(crate) fn name(&self) -> &'static str {
        self.controller.name()
    }

    /// The per-bin control step, shared verbatim by the serial engine and
    /// the pipelined sequencer so controller decisions stay a pure function
    /// of the report stream: derives the [`BinObservation`] from the sealed
    /// report and the bin's still-live ranking, records the decision trail
    /// on the report, and — when the decided rate differs from the applied
    /// one — returns the rate tag and re-targeted sampler spec the
    /// controlled lane must be rebuilt with before the next bin's packets.
    pub(crate) fn step(
        &mut self,
        report: &mut BinReport,
        truth: &GroundTruthRanking<AnyFlowKey>,
        top_t: usize,
    ) -> Option<(f64, SamplerSpec)> {
        let lane_report = &mut report.lanes[self.lane];
        lane_report.controlled = true;
        let observation = &mut self.observation;
        observation.bin_index = report.bin_index;
        observation.applied_rate = self.applied_rate;
        observation.packets = report.packets;
        observation.flows = report.flows as u64;
        observation.kept_packets = lane_report.sampled_packets;
        observation.ranking_swaps = lane_report.outcome.ranking_swaps;
        observation.ranking_pairs = lane_report.outcome.ranking_pairs;
        observation.missed_top_flows = lane_report.outcome.missed_top_flows;
        // Top t+1 true sizes: every adjacent top-t pair, including the
        // boundary pair against the first flow below the cut.
        observation.top_sizes.clear();
        observation
            .top_sizes
            .extend(truth.flows().iter().take(top_t + 1).map(|f| f.packets));
        let top = &truth.flows()[..truth.flows().len().min(top_t)];
        observation.top_churn = if self.prev_top.is_empty() || top.is_empty() {
            0.0
        } else {
            let changed = top
                .iter()
                .filter(|f| !self.prev_top.contains(&f.key))
                .count();
            changed as f64 / top.len() as f64
        };
        self.prev_top.clear();
        self.prev_top.extend(top.iter().map(|f| f.key));

        let decision = self.controller.observe(observation);
        report.controller = Some(ControllerTrail {
            controller: self.controller.name(),
            lane: self.lane,
            applied_rate: self.applied_rate,
            decided_rate: decision.rate,
            swapped_fraction: observation.swapped_fraction(),
            top_churn: observation.top_churn,
        });
        if decision.rate != self.applied_rate {
            self.applied_rate = decision.rate;
            Some((decision.rate, self.template.with_rate(decision.rate)))
        } else {
            None
        }
    }
}

/// A resolved flow-table cap ([`MonitorBuilder::flow_budget`]): evict down
/// to `cap` whenever a table reaches `high_water`.
///
/// The check runs after every observed packet, so the eviction schedule is
/// a pure function of the packet sequence — independent of how callers
/// chunked the stream — while the 50% hysteresis band keeps the amortized
/// cost at one sort per `cap / 2` new flows rather than one per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlowBudget {
    cap: usize,
    high_water: usize,
}

impl FlowBudget {
    pub(crate) fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlowBudget {
            cap,
            // At least one entry of slack so a freshly evicted table can
            // always admit the next new flow without immediately re-sorting.
            high_water: cap + (cap / 2).max(1),
        }
    }

    /// The configured cap (eviction low-water mark).
    pub(crate) fn cap(self) -> usize {
        self.cap
    }

    /// Evicts `table` down to the cap when it has reached the high-water
    /// mark, returning how many entries were removed.
    #[inline]
    fn enforce<K: flowrank_net::FlowKey>(self, table: &mut FlowTable<K>) -> u64 {
        if table.flow_count() >= self.high_water {
            table.evict_to_budget(self.cap)
        } else {
            0
        }
    }
}

/// One independent sampling pipeline inside the monitor: a sampler + RNG
/// stage, the sampled flow table it fills, and an optional top-k backend.
pub(crate) struct Lane {
    spec: SamplerSpec,
    rate: f64,
    rate_id: usize,
    run: usize,
    seed: u64,
    stage: SamplerStage<Pcg64>,
    table: FlowTable<AnyFlowKey>,
    tracker: Option<Box<dyn TopKTracker + Send>>,
    tracker_rng: Pcg64,
    /// Per-lane scratch for the kept-packet indices of one batch segment;
    /// owned by the lane so lanes can run on worker threads without sharing.
    kept: Vec<u32>,
    /// Chaos hook ([`MonitorBuilder::inject_lane_panic_after`]): panic once
    /// more than this many packets have been offered to the lane.
    pub(crate) panic_after: Option<u64>,
    /// Packets offered so far, counted only when the chaos hook is armed.
    observed: u64,
    /// Flow-table cap, enforced after every kept packet
    /// ([`MonitorBuilder::flow_budget`]).
    flow_budget: Option<FlowBudget>,
    /// Entries evicted from this lane's table in the current bin, drained
    /// by the engine at each seal.
    evictions: u64,
}

impl Lane {
    fn new(
        spec: &SamplerSpec,
        rate_tag: f64,
        rate_id: usize,
        topk: Option<&TopKSpec>,
        run: usize,
        seed: u64,
        flow_budget: Option<FlowBudget>,
    ) -> Self {
        Lane {
            spec: *spec,
            rate: rate_tag,
            rate_id,
            run,
            seed,
            stage: SamplerStage::new(spec.build(seed), Pcg64::seed_from_u64(seed)),
            table: FlowTable::new(),
            tracker: topk.map(|t| t.build()),
            tracker_rng: Pcg64::seed_from_u64(seed ^ TRACKER_SEED_SALT),
            kept: Vec::new(),
            panic_after: None,
            observed: 0,
            flow_budget,
            evictions: 0,
        }
    }

    /// Drains the lane's eviction count for the closing bin.
    pub(crate) fn take_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.evictions)
    }

    /// Offers the packets `batch[range]` (with their precomputed flow keys,
    /// `keys[i - range.start]` for batch index `i`) to the lane in one call:
    /// the sampler stage appends the indices it keeps — skipping directly
    /// from keep to keep for skip-capable samplers — and only the retained
    /// packets touch the lane's flow table and top-k backend.
    pub(crate) fn offer_batch(
        &mut self,
        keys: &[AnyFlowKey],
        batch: &PacketBatch,
        range: Range<usize>,
    ) {
        if let Some(limit) = self.panic_after {
            self.observed += range.len() as u64;
            if self.observed > limit {
                panic!("injected lane panic after {limit} packets");
            }
        }
        self.kept.clear();
        self.stage.admit_batch(batch, range.clone(), &mut self.kept);
        for slot in 0..self.kept.len() {
            let i = self.kept[slot] as usize;
            self.table.observe_keyed_parts(
                keys[i - range.start],
                batch.timestamp(i),
                batch.length(i),
                batch.tcp_seq(i),
            );
            if let Some(budget) = self.flow_budget {
                self.evictions += budget.enforce(&mut self.table);
            }
            if let Some(tracker) = &mut self.tracker {
                tracker.observe(&batch.five_tuple(i), &mut self.tracker_rng);
            }
        }
    }

    /// Scores the lane against the bin's prepared ground truth and restarts
    /// it for the next bin.
    pub(crate) fn close_bin(
        &mut self,
        truth: &GroundTruthRanking<AnyFlowKey>,
        top_t: usize,
    ) -> LaneReport {
        let outcome = truth.compare_with(|key| self.table.size_of(key));
        let topk = self.tracker.as_ref().map(|tracker| TopKReport {
            backend: tracker.name(),
            entries: tracker.top(top_t),
            memory_entries: tracker.memory_entries(),
        });
        let report = LaneReport {
            rate: self.rate,
            rate_id: self.rate_id,
            run: self.run,
            sampler: self.spec.name(),
            sampled_flows: self.table.flow_count(),
            sampled_packets: self.table.total_packets(),
            outcome,
            topk,
            controlled: false,
        };
        self.table.clear();
        // Every bin restarts the lane's random stream from its seed — the
        // paper's methodology treats bins as independent measurements, and
        // this is what makes streaming results bit-identical to the batch
        // engine, which reseeds per bin.
        self.stage.start_interval(Pcg64::seed_from_u64(self.seed));
        if let Some(tracker) = &mut self.tracker {
            tracker.reset();
            self.tracker_rng = Pcg64::seed_from_u64(self.seed ^ TRACKER_SEED_SALT);
        }
        report
    }

    /// Rebuilds the lane's sampler at a controller-decided rate from the
    /// lane's fixed seed. `close_bin` already reseeds every lane per bin,
    /// so this is the same restart it would have performed — just at a
    /// different rate. `rate_tag` is the decided rate the lane is labelled
    /// with (it can differ from the spec's own nominal rate for disciplines
    /// whose retargeting is a no-op, e.g. smart sampling).
    pub(crate) fn retune(&mut self, rate_tag: f64, spec: SamplerSpec) {
        self.rate = rate_tag;
        self.spec = spec;
        self.stage = SamplerStage::new(self.spec.build(self.seed), Pcg64::seed_from_u64(self.seed));
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("spec", &self.spec)
            .field("run", &self.run)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Push-based streaming monitor: sampling, classification and ranking
/// metrics in one pipeline.
///
/// Drive it with [`Monitor::push`] for every packet in timestamp order and
/// collect the [`BinReport`]s it emits; call [`Monitor::finish`] at the end
/// of the trace to close the last bin. [`Monitor::run_trace`] wraps that loop
/// for in-memory traces.
#[derive(Debug)]
pub struct Monitor {
    flow_definition: FlowDefinition,
    bin_length: Timestamp,
    top_t: usize,
    engine: Engine,
    current_bin: u64,
    saw_packet: bool,
    threads: usize,
    /// Segments at or above this many packets go to the worker pool;
    /// smaller ones are processed inline ([`MonitorBuilder::parallel_segment_min`]).
    parallel_segment_min: usize,
    /// Observability counters for the fan-out heuristic: how many within-bin
    /// segments took each path.
    segments_inline: u64,
    segments_dispatched: u64,
    /// Reusable one-element batch backing [`Monitor::push`], and a reusable
    /// key buffer for batch segments — per-packet pushes never allocate.
    scratch_batch: PacketBatch,
    scratch_keys: Vec<AnyFlowKey>,
    /// Reusable report buffer for the sink-based close path: the lanes
    /// vector is recycled across bins, so in steady state a sink-driven
    /// monitor closes bins without allocating the report shell (only
    /// attached top-k backends still build their per-bin entry lists).
    scratch_report: BinReport,
    /// Largest timestamp pushed so far — backs the debug assertion that the
    /// documented non-decreasing push contract holds across calls.
    last_ts_nanos: Option<u64>,
    /// Recovery policy for the fallible entry points
    /// ([`MonitorBuilder::drive_policy`]).
    drive_policy: DrivePolicy,
    /// Lifetime count of timestamp regressions absorbed under
    /// [`TimestampPolicy::ClampAndCount`].
    clamped_timestamps: u64,
    /// Set once a pool thread panicked: `(worker, bin)` of the first
    /// detected failure. A poisoned monitor returns the same
    /// [`DriveError::WorkerPanicked`] from every fallible call (infallible
    /// entry points panic — once, cleanly) and drops safely.
    poisoned: Option<(usize, u64)>,
}

/// How the monitor executes classification and bin seals: entirely on the
/// calling thread (`threads(1)`, the default), or on the persistent
/// pipelined worker pool spawned at `build()` (`threads(n > 1)`). The two
/// engines produce bit-identical reports; only the execution schedule
/// differs.
#[derive(Debug)]
enum Engine {
    Serial(SerialEngine),
    Pipelined(PipelinedRuntime),
}

/// The single-threaded engine: one ground-truth table, the lanes, and the
/// controller, all driven on the calling thread — unchanged from the
/// pre-runtime monitor, so `threads(1)` pays zero synchronisation cost.
#[derive(Debug)]
struct SerialEngine {
    ground_truth: FlowTable<AnyFlowKey>,
    lanes: Vec<Lane>,
    controller: Option<ControllerState>,
    /// Per-table flow cap ([`MonitorBuilder::flow_budget`]), enforced
    /// packet-by-packet so eviction points are independent of how the
    /// stream was chunked.
    flow_budget: Option<FlowBudget>,
    /// Ground-truth entries evicted so far in the current bin; joined with
    /// the per-lane counts into [`BinReport::evictions`] at each seal.
    evictions: u64,
}

impl SerialEngine {
    /// Observes one keyed within-bin segment: ground truth first, then
    /// every lane in lane order.
    fn observe(&mut self, keys: &[AnyFlowKey], batch: &PacketBatch, range: Range<usize>) {
        for (slot, i) in range.clone().enumerate() {
            self.ground_truth.observe_keyed_parts(
                keys[slot],
                batch.timestamp(i),
                batch.length(i),
                batch.tcp_seq(i),
            );
            if let Some(budget) = self.flow_budget {
                self.evictions += budget.enforce(&mut self.ground_truth);
            }
        }
        for lane in &mut self.lanes {
            lane.offer_batch(keys, batch, range.clone());
        }
    }

    /// Ranks the ground truth once, scores every lane against it, writes
    /// the bin report into `report` (reusing its lane buffer), runs the
    /// control step and resets all per-bin state.
    fn seal_bin(
        &mut self,
        report: &mut BinReport,
        bin_index: u64,
        bin_start: Timestamp,
        top_t: usize,
    ) {
        // One classification and one sort per bin, regardless of lane
        // count: this is the entire point of the shared-ground-truth
        // design.
        let truth = GroundTruthRanking::new(
            self.ground_truth
                .iter_sizes()
                .map(|(key, packets)| SizedFlow { key, packets })
                .collect(),
            top_t,
        );
        report.reset();
        report.lanes.extend(
            self.lanes
                .iter_mut()
                .map(|lane| lane.close_bin(&truth, top_t)),
        );
        report.bin_index = bin_index;
        report.bin_start = bin_start;
        report.packets = self.ground_truth.total_packets();
        report.flows = self.ground_truth.flow_count();
        report.evictions = std::mem::take(&mut self.evictions)
            + self.lanes.iter_mut().map(Lane::take_evictions).sum::<u64>();
        // The control step runs after lane scoring while the bin's ground
        // truth is still live — so controller decisions are a pure function
        // of the report stream, independent of thread count and ingestion
        // path like everything else in the report.
        if let Some(state) = self.controller.as_mut() {
            if let Some((rate, spec)) = state.step(report, &truth, top_t) {
                self.lanes[state.lane].retune(rate, spec);
            }
        }
        self.ground_truth.clear();
    }
}

impl Monitor {
    /// Starts building a monitor.
    pub fn builder() -> MonitorBuilder {
        MonitorBuilder::new()
    }

    /// Number of sampling lanes (runs × rates).
    pub fn lane_count(&self) -> usize {
        match &self.engine {
            Engine::Serial(engine) => engine.lanes.len(),
            Engine::Pipelined(runtime) => runtime.lane_count(),
        }
    }

    /// The configured flow definition.
    pub fn flow_definition(&self) -> FlowDefinition {
        self.flow_definition
    }

    /// The configured measurement-bin length.
    pub fn bin_length(&self) -> Timestamp {
        self.bin_length
    }

    /// The configured number of reported top flows.
    pub fn top_t(&self) -> usize {
        self.top_t
    }

    /// Index of the bin currently being filled.
    pub fn current_bin(&self) -> u64 {
        self.current_bin
    }

    /// Worker threads used for batch processing.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured fan-out threshold
    /// ([`MonitorBuilder::parallel_segment_min`]).
    pub fn parallel_segment_min(&self) -> usize {
        self.parallel_segment_min
    }

    /// How many within-bin segments were processed on the calling thread
    /// vs. dispatched to the worker pool, since the monitor was built —
    /// `(inline, dispatched)`. A `threads(1)` monitor counts everything as
    /// inline. Backs the regression tests around the fan-out threshold.
    pub fn segment_stats(&self) -> (u64, u64) {
        (self.segments_inline, self.segments_dispatched)
    }

    /// The configured recovery policy ([`MonitorBuilder::drive_policy`]).
    pub fn drive_policy(&self) -> DrivePolicy {
        self.drive_policy
    }

    /// The configured per-table flow cap ([`MonitorBuilder::flow_budget`]),
    /// `None` when the monitor runs unbudgeted.
    pub fn flow_budget(&self) -> Option<usize> {
        match &self.engine {
            Engine::Serial(engine) => engine.flow_budget.map(FlowBudget::cap),
            Engine::Pipelined(_) => None,
        }
    }

    /// Lifetime count of timestamp regressions absorbed under
    /// [`TimestampPolicy::ClampAndCount`] (0 under any other policy).
    pub fn clamped_timestamps(&self) -> u64 {
        self.clamped_timestamps
    }

    /// Whether a worker-pool thread has panicked. A poisoned monitor keeps
    /// returning [`DriveError::WorkerPanicked`] from fallible calls and can
    /// be dropped safely, but can do no further work.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Name of the attached rate controller, when one is attached.
    pub fn controller_name(&self) -> Option<&'static str> {
        match &self.engine {
            Engine::Serial(engine) => engine.controller.as_ref().map(|s| s.name()),
            Engine::Pipelined(runtime) => runtime.controller_name(),
        }
    }

    /// Index of the controlled lane in every bin's `lanes`, when a
    /// controller is attached.
    pub fn controlled_lane(&self) -> Option<usize> {
        match &self.engine {
            Engine::Serial(engine) => engine.controller.as_ref().map(|s| s.lane),
            Engine::Pipelined(runtime) => runtime.controlled_lane(),
        }
    }

    /// Observes one packet.
    ///
    /// Packets must arrive in non-decreasing timestamp order (a packet older
    /// than the current bin is counted into the current bin rather than
    /// rewriting history). Returns the reports of every bin the packet's
    /// timestamp closed — normally none or one; more when the trace has idle
    /// gaps, in which case the intervening empty bins are reported too, so
    /// bin indices always correspond to wall-clock intervals.
    ///
    /// `push` *is* [`Monitor::push_batch`] with a one-element batch (backed
    /// by a reusable scratch batch, so no allocation happens per packet):
    /// because every sampler's per-packet and batch paths share state, the
    /// two entry points are bit-identical for any way of cutting the stream
    /// into batches.
    pub fn push(&mut self, packet: &PacketRecord) -> Vec<BinReport> {
        let mut sink = Collect::new();
        self.push_into(packet, &mut sink);
        sink.reports
    }

    /// [`Monitor::push`] with the closed bins delivered to a sink by
    /// reference instead of returned as owned reports.
    pub fn push_into<K: ReportSink + ?Sized>(&mut self, packet: &PacketRecord, sink: &mut K) {
        let mut batch = std::mem::take(&mut self.scratch_batch);
        batch.clear();
        batch.push_record(packet);
        self.push_batch_into(&batch, sink);
        self.scratch_batch = batch;
    }

    /// Observes a whole batch of packets (timestamps non-decreasing, as with
    /// [`Monitor::push`]), splitting it on measurement-bin boundaries:
    /// each contiguous segment is classified into the ground truth in one
    /// pass and offered to every lane batch-at-a-time, and every bin closed
    /// by the batch's timestamps is reported, in order.
    ///
    /// With [`MonitorBuilder::threads`] above 1, each segment's ground truth
    /// classifies in parallel across its shards and the lanes split across
    /// workers — with reports bit-identical to the single-threaded and
    /// per-packet paths (pinned by the `streaming_equivalence` suite).
    pub fn push_batch(&mut self, batch: &PacketBatch) -> Vec<BinReport> {
        let mut sink = Collect::new();
        self.push_batch_into(batch, &mut sink);
        sink.reports
    }

    /// [`Monitor::push_batch`] with the closed bins delivered to a sink by
    /// reference the moment they close, instead of buffered into an owned
    /// `Vec` — the hot path of [`Monitor::drive`]. The report a sink
    /// receives is backed by a buffer the monitor recycles across bins, so
    /// steady-state bin closes are allocation-free on the monitor side.
    pub fn push_batch_into<K: ReportSink + ?Sized>(&mut self, batch: &PacketBatch, sink: &mut K) {
        if let Err(error) = self.try_push_batch_into(batch, sink) {
            panic!("{error}");
        }
    }

    /// Fallible form of [`Monitor::push_batch_into`]: instead of panicking,
    /// surfaces a timestamp regression rejected by
    /// [`TimestampPolicy::Reject`] as [`DriveError::TimestampRegression`]
    /// and a worker-pool panic as [`DriveError::WorkerPanicked`] (after
    /// which the monitor is poisoned — every further fallible call returns
    /// the same error, and dropping it is safe). The `stats` carried on
    /// these errors are empty; [`Monitor::try_drive`] fills them in for a
    /// whole drive.
    pub fn try_push_batch_into<K: ReportSink + ?Sized>(
        &mut self,
        batch: &PacketBatch,
        sink: &mut K,
    ) -> Result<(), DriveError> {
        if let Some(error) = self.poisoned_error() {
            return Err(error);
        }
        if let Err((prev_nanos, ts_nanos)) = self.check_timestamp_contract(batch) {
            return Err(DriveError::TimestampRegression {
                prev_nanos,
                ts_nanos,
                stats: DriveStats::default(),
            });
        }
        let mut start = 0;
        while start < batch.len() {
            // A packet older than the current bin is counted into the
            // current bin, matching `push`.
            let bin = batch
                .timestamp(start)
                .bin_index(self.bin_length)
                .max(self.current_bin);
            while bin > self.current_bin {
                self.emit_current_bin(sink);
            }
            let mut end = start + 1;
            while end < batch.len()
                && batch.timestamp(end).bin_index(self.bin_length) <= self.current_bin
            {
                end += 1;
            }
            self.process_segment(batch, start..end, sink)
                .map_err(|failure| self.poison(failure))?;
            start = end;
        }
        // Tail barrier of the pipelined runtime: every bin this call sealed
        // reaches the sink before the call returns, keeping the synchronous
        // API contract. (Observation work may still be in flight — that is
        // the pipelining — only *seals* are awaited.) A panic on a pool
        // thread surfaces here at the latest: either the drain observes the
        // disconnect, or the failure cell is already set.
        if let Engine::Pipelined(runtime) = &mut self.engine {
            let failure = match runtime.drain_into(sink) {
                Err(failure) => Some(failure),
                Ok(()) => runtime.failure(),
            };
            if let Some(failure) = failure {
                return Err(self.poison(failure));
            }
        }
        Ok(())
    }

    /// Latches the poisoned state from a recorded pool failure and converts
    /// it to the error every subsequent fallible call will keep returning.
    fn poison(&mut self, failure: RuntimeFailure) -> DriveError {
        let entry = self
            .poisoned
            .get_or_insert((failure.worker, self.current_bin));
        DriveError::WorkerPanicked {
            worker: entry.0,
            bin: entry.1,
            stats: DriveStats::default(),
        }
    }

    /// The latched poison error, when a pool thread has panicked.
    fn poisoned_error(&self) -> Option<DriveError> {
        self.poisoned
            .map(|(worker, bin)| DriveError::WorkerPanicked {
                worker,
                bin,
                stats: DriveStats::default(),
            })
    }

    /// Enforces the documented push contract — timestamps non-decreasing
    /// within a batch and across calls — according to
    /// [`DrivePolicy::timestamps`]:
    ///
    /// * [`TimestampPolicy::DebugAssert`] (default): debug builds fail fast
    ///   on a regression, release builds keep the historical tolerant fold
    ///   (an out-of-order packet counts into the current bin).
    /// * [`TimestampPolicy::Reject`]: returns the offending `(prev, ts)`
    ///   pair in every build; the batch is not applied.
    /// * [`TimestampPolicy::ClampAndCount`]: folds tolerantly in every
    ///   build and counts each regression in
    ///   [`Monitor::clamped_timestamps`].
    fn check_timestamp_contract(&mut self, batch: &PacketBatch) -> Result<(), (u64, u64)> {
        let ts = batch.ts_nanos();
        match self.drive_policy.timestamps {
            TimestampPolicy::DebugAssert => {
                #[cfg(debug_assertions)]
                {
                    if let (Some(&first), Some(last)) = (ts.first(), self.last_ts_nanos) {
                        debug_assert!(
                            first >= last,
                            "Monitor: timestamp regressed across push calls \
                             ({first} ns after {last} ns); the push contract requires \
                             non-decreasing timestamps"
                        );
                    }
                    for pair in ts.windows(2) {
                        debug_assert!(
                            pair[0] <= pair[1],
                            "Monitor: timestamps regress inside one batch \
                             ({} ns after {} ns); the push contract requires \
                             non-decreasing timestamps",
                            pair[1],
                            pair[0]
                        );
                    }
                }
            }
            TimestampPolicy::Reject => {
                if let (Some(&first), Some(last)) = (ts.first(), self.last_ts_nanos) {
                    if first < last {
                        return Err((last, first));
                    }
                }
                if let Some(pair) = ts.windows(2).find(|pair| pair[0] > pair[1]) {
                    return Err((pair[0], pair[1]));
                }
            }
            TimestampPolicy::ClampAndCount => {
                if let (Some(&first), Some(last)) = (ts.first(), self.last_ts_nanos) {
                    if first < last {
                        self.clamped_timestamps += 1;
                    }
                }
                self.clamped_timestamps +=
                    ts.windows(2).filter(|pair| pair[0] > pair[1]).count() as u64;
            }
        }
        if let Some(&last) = ts.last() {
            self.last_ts_nanos = Some(self.last_ts_nanos.map_or(last, |seen| seen.max(last)));
        }
        Ok(())
    }

    /// Feeds one within-bin segment of a batch to the ground truth and the
    /// lanes. On the serial engine everything runs here on the calling
    /// thread. On the pipelined engine, segments of at least
    /// [`MonitorBuilder::parallel_segment_min`] packets are keyed, routed
    /// and broadcast to the worker pool (overlapping with whatever the
    /// workers are still classifying), while smaller segments — per-packet
    /// `push` in particular — are processed inline after a quiescence
    /// barrier, where a channel round-trip would cost more than the work.
    /// Results are bit-identical on every path.
    fn process_segment<K: ReportSink + ?Sized>(
        &mut self,
        batch: &PacketBatch,
        range: Range<usize>,
        sink: &mut K,
    ) -> Result<(), RuntimeFailure> {
        self.saw_packet = true;
        let definition = self.flow_definition;
        match &mut self.engine {
            Engine::Serial(engine) => {
                self.segments_inline += 1;
                let mut keys = std::mem::take(&mut self.scratch_keys);
                keys.clear();
                keys.extend(range.clone().map(|i| batch.flow_key(i, definition)));
                engine.observe(&keys, batch, range);
                self.scratch_keys = keys;
            }
            Engine::Pipelined(runtime) => {
                if range.len() >= self.parallel_segment_min {
                    self.segments_dispatched += 1;
                    runtime.dispatch_segment(definition, batch, range);
                    runtime.try_drain_into(sink);
                } else {
                    self.segments_inline += 1;
                    // Inline work touches the shared shards and lanes, so
                    // the pipe must be quiet: deliver pending seal reports,
                    // then barrier any in-flight segments.
                    runtime.drain_into(sink)?;
                    runtime.flush();
                    let mut keys = std::mem::take(&mut self.scratch_keys);
                    keys.clear();
                    keys.extend(range.clone().map(|i| batch.flow_key(i, definition)));
                    runtime.observe_inline(&keys, batch, range);
                    self.scratch_keys = keys;
                }
            }
        }
        Ok(())
    }

    /// Closes the bin currently being filled and returns its report, or
    /// `None` when the monitor never saw a packet for it. Call at the end of
    /// a trace.
    pub fn finish(&mut self) -> Option<BinReport> {
        let mut sink = Collect::new();
        if self.finish_into(&mut sink) {
            sink.reports.pop()
        } else {
            None
        }
    }

    /// [`Monitor::finish`] against a sink: closes the bin currently being
    /// filled (when any packet started one) and delivers its report by
    /// reference. Returns whether a bin was closed.
    pub fn finish_into<K: ReportSink + ?Sized>(&mut self, sink: &mut K) -> bool {
        match self.try_finish_into(sink) {
            Ok(closed) => closed,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible form of [`Monitor::finish_into`]: a worker-pool panic
    /// surfaces as [`DriveError::WorkerPanicked`] instead of panicking the
    /// calling thread.
    pub fn try_finish_into<K: ReportSink + ?Sized>(
        &mut self,
        sink: &mut K,
    ) -> Result<bool, DriveError> {
        if let Some(error) = self.poisoned_error() {
            return Err(error);
        }
        if !self.saw_packet {
            return Ok(false);
        }
        self.emit_current_bin(sink);
        if let Engine::Pipelined(runtime) = &mut self.engine {
            runtime
                .drain_into(sink)
                .map_err(|failure| self.poison(failure))?;
        }
        self.saw_packet = false;
        Ok(true)
    }

    /// Runs a whole in-memory trace through the monitor: converts it to one
    /// [`PacketBatch`], pushes it through [`Monitor::push_batch`] and closes
    /// the final bin. Reports are bit-identical to pushing every packet
    /// individually, for any thread count.
    pub fn run_trace(&mut self, packets: &[PacketRecord]) -> Vec<BinReport> {
        let batch = PacketBatch::from_records(packets);
        self.run_batch(&batch)
    }

    /// Runs a whole in-memory batch through the monitor and closes the final
    /// bin — [`Monitor::push_batch`] plus [`Monitor::finish`].
    pub fn run_batch(&mut self, batch: &PacketBatch) -> Vec<BinReport> {
        let mut sink = Collect::new();
        self.push_batch_into(batch, &mut sink);
        self.finish_into(&mut sink);
        sink.reports
    }

    /// Drives the monitor from a packet source into a report sink until the
    /// source is exhausted, then closes the final bin — the canonical entry
    /// point of the streaming pipeline; every other ingestion method is a
    /// special case of it.
    ///
    /// The contract:
    ///
    /// * **Chunking invariance** — for a fixed packet sequence, the reports
    ///   are bit-identical for *any* way the source cuts it into chunks
    ///   (down to one packet per chunk) and for any thread count, because
    ///   `drive` is a loop over [`Monitor::push_batch_into`] and every
    ///   sampler's per-packet and batch paths share state.
    /// * **Sink ordering** — the sink sees every closed bin exactly once, in
    ///   bin-index order (idle gaps emit their empty bins too), and the
    ///   final partial bin is flushed when the source ends, exactly like
    ///   [`Monitor::finish`].
    /// * **Borrowed reports** — the sink receives `&BinReport` backed by a
    ///   buffer the monitor recycles; a sink must copy whatever it wants to
    ///   keep past the `accept` call. In return, steady-state operation
    ///   allocates nothing per bin on the monitor side.
    /// * **Bounded memory** — the monitor holds one chunk's worth of derived
    ///   keys plus per-lane state; with a streaming source (scenario
    ///   workloads, chunked pcap) and an aggregating sink, peak memory is
    ///   independent of trace length.
    ///
    /// Returns how much work was done (chunks, packets, reports). A monitor
    /// can be driven repeatedly; each drive closes its own final bin and
    /// later drives continue the bin sequence (timestamps must keep rising
    /// across them).
    pub fn drive<S, K>(&mut self, source: &mut S, sink: &mut K) -> DriveSummary
    where
        S: PacketSource + ?Sized,
        K: ReportSink + ?Sized,
    {
        let mut chunks = 0u64;
        let mut packets = 0u64;
        let mut counting = CountingSink {
            inner: sink,
            reports: 0,
        };
        while let Some(chunk) = source.next_chunk() {
            chunks += 1;
            packets += chunk.len() as u64;
            self.push_batch_into(chunk, &mut counting);
        }
        self.finish_into(&mut counting);
        DriveSummary {
            chunks,
            packets,
            reports: counting.reports,
        }
    }

    /// Fault-aware form of [`Monitor::drive`]: pulls chunks through
    /// [`PacketSource::try_next_chunk`], delivers reports through
    /// [`ReportSink::emit`], and recovers per the configured
    /// [`DrivePolicy`] ([`MonitorBuilder::drive_policy`]):
    ///
    /// * recoverable malformed records are skipped and counted when
    ///   [`DrivePolicy::skip_malformed`] is set, otherwise they abort —
    ///   fatal source errors always abort ([`DriveError::Source`]); a skip
    ///   is *progress*, so it also resets the stall detector's idle streak;
    /// * transient sink failures are retried up to
    ///   [`DrivePolicy::sink_retries`] times with exponential backoff;
    ///   permanent failures and exhausted retries abort
    ///   ([`DriveError::Sink`]);
    /// * total absorbed recoveries over [`DrivePolicy::error_budget`] abort
    ///   ([`DriveError::ErrorBudgetExhausted`]);
    /// * a source answering [`SourcePoll::Pending`] makes the loop sleep
    ///   [`DrivePolicy::idle_wait`] and poll again; an uninterrupted idle
    ///   streak of at least [`DrivePolicy::stall_polls`] polls spanning at
    ///   least [`DrivePolicy::stall_timeout`] of wall time aborts
    ///   ([`DriveError::SourceStalled`]);
    /// * timestamp regressions follow [`DrivePolicy::timestamps`], and a
    ///   worker-pool panic aborts with [`DriveError::WorkerPanicked`].
    ///
    /// On success returns the [`DriveStats`] health report; every abort
    /// carries the stats accumulated up to that point ([`DriveError::stats`]).
    /// A fault-free `try_drive` is bit-identical to [`Monitor::drive`] for
    /// every source chunking and thread count (pinned by the conformance
    /// goldens), and an aborted drive never closes the final bin — state
    /// simply stops advancing at the failure point.
    pub fn try_drive<S, K>(
        &mut self,
        source: &mut S,
        sink: &mut K,
    ) -> Result<DriveStats, DriveError>
    where
        S: PacketSource + ?Sized,
        K: ReportSink + ?Sized,
    {
        enum Outcome {
            Done,
            Drive(DriveError),
            Source(crate::fault::SourceError),
            Sink(SinkError),
            Stalled(u64, Duration),
            Budget,
        }
        let policy = self.drive_policy;
        let clamped_base = self.clamped_timestamps;
        let mut stats = DriveStats::default();
        let mut idle_streak = 0u64;
        // Wall-clock start of the current idle streak; `None` while the
        // source is making progress. The stall detector measures real time
        // from here, not loop iterations — a fast poll loop must not turn
        // `stall_polls` polls of a merely quiet source into an abort.
        let mut idle_since: Option<Instant> = None;
        let mut policy_sink = PolicySink {
            inner: sink,
            policy,
            retries: 0,
            reports: 0,
            failed: None,
        };
        let outcome = loop {
            match source.poll_chunk() {
                Ok(SourcePoll::Pending) => {
                    // Idle poll: "no data right now, not end-of-stream".
                    stats.idle_polls += 1;
                    idle_streak += 1;
                    let since = *idle_since.get_or_insert_with(Instant::now);
                    if idle_streak >= policy.stall_polls {
                        let stalled_for = since.elapsed();
                        if stalled_for >= policy.stall_timeout {
                            break Outcome::Stalled(idle_streak, stalled_for);
                        }
                    }
                    if !policy.idle_wait.is_zero() {
                        std::thread::sleep(policy.idle_wait);
                    }
                    continue;
                }
                Ok(SourcePoll::Chunk(chunk)) => {
                    idle_streak = 0;
                    idle_since = None;
                    stats.chunks += 1;
                    stats.packets += chunk.len() as u64;
                    if let Err(error) = self.try_push_batch_into(chunk, &mut policy_sink) {
                        break Outcome::Drive(error);
                    }
                    if let Some(error) = policy_sink.failed.take() {
                        break Outcome::Sink(error);
                    }
                }
                Ok(SourcePoll::End) => match self.try_finish_into(&mut policy_sink) {
                    Ok(_) => {
                        break match policy_sink.failed.take() {
                            Some(error) => Outcome::Sink(error),
                            None => Outcome::Done,
                        }
                    }
                    Err(error) => break Outcome::Drive(error),
                },
                Err(error) if error.is_recoverable() && policy.skip_malformed => {
                    stats.malformed_skipped += 1;
                    // A skipped record is progress past real input — a
                    // source alternating idle polls with skippable records
                    // is degraded, not stalled.
                    idle_streak = 0;
                    idle_since = None;
                }
                Err(error) => break Outcome::Source(error),
            }
            // One budget gate per loop turn: every recovery class the policy
            // absorbed so far counts against the same budget.
            if stats.malformed_skipped
                + policy_sink.retries
                + (self.clamped_timestamps - clamped_base)
                > policy.error_budget
            {
                break Outcome::Budget;
            }
        };
        stats.sink_retries = policy_sink.retries;
        stats.reports = policy_sink.reports;
        stats.clamped_timestamps = self.clamped_timestamps - clamped_base;
        match outcome {
            Outcome::Done => Ok(stats),
            Outcome::Drive(mut error) => {
                *error.stats_mut() = stats;
                Err(error)
            }
            Outcome::Source(error) => Err(DriveError::Source { error, stats }),
            Outcome::Sink(error) => Err(DriveError::Sink { error, stats }),
            Outcome::Stalled(idle_polls, stalled_for) => Err(DriveError::SourceStalled {
                idle_polls,
                stalled_for,
                stats,
            }),
            Outcome::Budget => Err(DriveError::ErrorBudgetExhausted {
                budget: policy.error_budget,
                stats,
            }),
        }
    }

    /// Closes the bin currently being filled and advances to the next one.
    /// The serial engine seals synchronously into the recycled scratch
    /// report; the pipelined engine broadcasts a seal down the worker
    /// queues (so it lands after everything already dispatched) and lets
    /// the sequencer assemble the report — the caller picks finished
    /// reports up opportunistically here and drains the rest before the
    /// enclosing call returns, so the sink still sees every bin in order.
    fn emit_current_bin<K: ReportSink + ?Sized>(&mut self, sink: &mut K) {
        let bin_index = self.current_bin;
        let bin_start =
            Timestamp::from_micros(bin_index.saturating_mul(self.bin_length.as_micros()));
        self.current_bin += 1;
        match &mut self.engine {
            Engine::Serial(engine) => {
                let mut report = std::mem::take(&mut self.scratch_report);
                engine.seal_bin(&mut report, bin_index, bin_start, self.top_t);
                sink.accept(&report);
                self.scratch_report = report;
            }
            Engine::Pipelined(runtime) => {
                // When the pool has died the seal send fails silently; the
                // enclosing call's tail `drain_into` observes the disconnect
                // and surfaces the recorded failure.
                runtime.dispatch_seal(bin_index, bin_start);
                runtime.try_drain_into(sink);
            }
        }
    }
}

/// Counts the reports flowing to an inner sink — backs
/// [`Monitor::drive`]'s summary.
struct CountingSink<'a, K: ?Sized> {
    inner: &'a mut K,
    reports: u64,
}

impl<K: ReportSink + ?Sized> ReportSink for CountingSink<'_, K> {
    fn accept(&mut self, report: &BinReport) {
        self.reports += 1;
        self.inner.accept(report);
    }

    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        self.inner.emit(report)?;
        self.reports += 1;
        Ok(())
    }
}

/// The sink [`Monitor::try_drive`] wraps around the caller's: every accept
/// becomes an [`ReportSink::emit`] with the policy's bounded
/// retry-with-backoff for transient failures. The first unrecovered failure
/// latches into `failed` and turns every later accept into a no-op, so the
/// drive loop can surface the error at its next check without pushing more
/// reports into a broken sink.
struct PolicySink<'a, K: ?Sized> {
    inner: &'a mut K,
    policy: DrivePolicy,
    /// Total retry attempts spent (across all reports).
    retries: u64,
    /// Reports successfully delivered.
    reports: u64,
    /// First unrecovered sink failure, awaiting pickup by the drive loop.
    failed: Option<SinkError>,
}

impl<K: ReportSink + ?Sized> ReportSink for PolicySink<'_, K> {
    fn accept(&mut self, report: &BinReport) {
        if self.failed.is_some() {
            return;
        }
        let mut backoff = self.policy.sink_backoff;
        let mut attempts = 0u32;
        loop {
            match self.inner.emit(report) {
                Ok(()) => {
                    self.reports += 1;
                    return;
                }
                Err(error) if error.is_transient() && attempts < self.policy.sink_retries => {
                    attempts += 1;
                    self.retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff = escalate_backoff(backoff, self.policy.sink_backoff_cap);
                }
                Err(error) => {
                    self.failed = Some(error);
                    return;
                }
            }
        }
    }
}

/// One step of [`PolicySink`]'s exponential backoff: double, saturating at
/// [`Duration::MAX`] instead of panicking (a caller-sized `sink_backoff`
/// near the top of the `Duration` range used to overflow `backoff * 2`),
/// then clamp to the policy's cap.
fn escalate_backoff(backoff: Duration, cap: Duration) -> Duration {
    backoff.saturating_mul(2).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn packet(flow: u8, t: f64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs_f64(t),
            Ipv4Addr::new(10, 0, 0, flow),
            1000 + flow as u16,
            Ipv4Addr::new(100, 64, flow, 1),
            80,
            500,
            0,
        )
    }

    /// Flow `i` of `flows` sends `10 * (flows − i)` packets inside one bin.
    fn skewed_bin(flows: u8, offset_secs: f64) -> Vec<PacketRecord> {
        let mut packets = Vec::new();
        for i in 0..flows {
            for j in 0..(10 * (flows - i) as usize) {
                packets.push(packet(i, offset_secs + j as f64 * 0.01));
            }
        }
        packets.sort_by_key(|p| p.timestamp);
        packets
    }

    #[test]
    fn backoff_escalation_saturates_instead_of_overflowing() {
        // Regression: `backoff * 2` panicked (`overflow when multiplying
        // duration by scalar`) once the backoff crossed half of
        // `Duration::MAX`, so a retry sequence under a huge configured
        // backoff aborted the process instead of retrying.
        let huge = Duration::MAX - Duration::from_nanos(1);
        assert_eq!(escalate_backoff(huge, Duration::MAX), Duration::MAX);
        // Ordinary escalation still doubles, and the cap clamps.
        assert_eq!(
            escalate_backoff(Duration::from_millis(10), Duration::from_secs(1)),
            Duration::from_millis(20)
        );
        assert_eq!(
            escalate_backoff(Duration::from_millis(800), Duration::from_secs(1)),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn full_sampling_lane_is_error_free() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .top_t(10)
            .build();
        let reports = monitor.run_trace(&skewed_bin(20, 0.0));
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.flows, 20);
        assert_eq!(report.lanes.len(), 1);
        assert_eq!(report.lanes[0].sampled_flows, 20);
        assert_eq!(report.lanes[0].outcome.ranking_swaps, 0);
        assert_eq!(report.lanes[0].outcome.detection_swaps, 0);
    }

    #[test]
    fn bins_close_on_timestamp_boundaries() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .seed(3)
            .build();
        let mut packets = skewed_bin(10, 0.0);
        packets.extend(skewed_bin(10, 61.0));
        let mut reports = Vec::new();
        for p in &packets {
            reports.extend(monitor.push(p));
        }
        // The second bin is still open until finish().
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].bin_index, 0);
        let last = monitor.finish().expect("second bin must close");
        assert_eq!(last.bin_index, 1);
        assert_eq!(last.bin_start, Timestamp::from_secs_f64(60.0));
        assert!(monitor.finish().is_none(), "no third bin was started");
    }

    #[test]
    fn idle_gaps_emit_empty_bins() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        assert!(monitor.push(&packet(1, 10.0)).is_empty());
        // Jumping to bin 3 closes bins 0 (1 packet), 1 and 2 (empty).
        let closed = monitor.push(&packet(1, 190.0));
        assert_eq!(closed.len(), 3);
        assert_eq!(closed[0].packets, 1);
        assert_eq!(closed[1].packets, 0);
        assert_eq!(closed[1].flows, 0);
        assert_eq!(closed[2].packets, 0);
        assert_eq!(monitor.current_bin(), 3);
    }

    #[test]
    fn flow_budget_evicts_chunk_invariantly() {
        let build = || {
            Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.5 })
                .bin_length(Timestamp::from_secs_f64(60.0))
                .seed(7)
                .flow_budget(8)
                .build()
        };
        assert_eq!(build().flow_budget(), Some(8));
        // 40 distinct flows against a cap of 8 (high water 12): the budget
        // binds repeatedly within the bin.
        let packets = skewed_bin(40, 0.0);
        let whole = build().run_trace(&packets);
        assert_eq!(whole.len(), 1);
        assert!(whole[0].evictions > 0, "budget must have bound");
        assert!(
            whole[0].flows < 40,
            "sealed ground truth holds only survivors"
        );
        // Per-packet push — the opposite chunking extreme — must evict at
        // exactly the same points and report bit-identically.
        let mut monitor = build();
        let mut pushed = Vec::new();
        for p in &packets {
            pushed.extend(monitor.push(p));
        }
        pushed.extend(monitor.finish());
        assert_eq!(pushed, whole);
        // An unbudgeted monitor reports no evictions.
        let free = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .seed(7)
            .build()
            .run_trace(&packets);
        assert_eq!(free[0].evictions, 0);
        assert_eq!(free[0].flows, 40);
    }

    #[test]
    #[should_panic(expected = "flow_budget requires threads(1)")]
    fn flow_budget_rejects_multithreaded_monitors() {
        let _ = Monitor::builder().flow_budget(64).threads(2).build();
    }

    #[test]
    fn fan_out_shares_ground_truth_across_lanes() {
        let rates = [0.1, 0.5];
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.0 })
            .rates(&rates)
            .runs(5)
            .seed(11)
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        assert_eq!(monitor.lane_count(), 10);
        let reports = monitor.run_trace(&skewed_bin(30, 0.0));
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.lanes.len(), 10);
        assert_eq!(report.lanes_at_rate(0.1).count(), 5);
        // Higher rates rank better on average.
        assert!(report.mean_ranking_at_rate(0.5) < report.mean_ranking_at_rate(0.1));
        // Runs within a rate use distinct seeds → not all outcomes identical.
        let outcomes: Vec<u64> = report
            .lanes_at_rate(0.1)
            .map(|l| l.outcome.ranking_swaps)
            .collect();
        assert!(outcomes.iter().any(|&o| o != outcomes[0]) || outcomes.is_empty());
    }

    #[test]
    fn monitor_is_deterministic_per_seed() {
        let build = || {
            Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.1 })
                .rates(&[0.05, 0.2])
                .runs(4)
                .seed(77)
                .build()
        };
        let packets = skewed_bin(25, 0.0);
        let a = build().run_trace(&packets);
        let b = build().run_trace(&packets);
        assert_eq!(a, b);
    }

    #[test]
    fn topk_backend_rides_on_sampled_packets() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .topk(crate::spec::TopKSpec::SpaceSaving { capacity: 8 })
            .top_t(3)
            .build();
        let reports = monitor.run_trace(&skewed_bin(20, 0.0));
        let topk = reports[0].lanes[0].topk.as_ref().expect("backend attached");
        assert_eq!(topk.backend, "space-saving");
        assert!(topk.memory_entries <= 8);
        assert_eq!(topk.entries.len(), 3);
        // At full sampling the largest flow (200 packets) leads the list;
        // space-saving estimates are upper bounds under tight memory.
        assert!(topk.entries[0].estimate >= 200);
    }

    #[test]
    fn every_sampler_spec_runs_through_the_monitor() {
        let specs = [
            SamplerSpec::Random { rate: 0.3 },
            SamplerSpec::Periodic {
                rate: 0.3,
                random_phase: true,
            },
            SamplerSpec::Stratified { rate: 0.3 },
            SamplerSpec::Flow { rate: 0.3 },
            SamplerSpec::Smart { threshold: 20.0 },
            SamplerSpec::Adaptive {
                initial_rate: 0.3,
                budget_per_interval: 100,
                interval: Timestamp::from_secs_f64(1.0),
            },
        ];
        let packets = skewed_bin(15, 0.0);
        for spec in specs {
            let mut monitor = Monitor::builder().sampler(spec).seed(5).build();
            let reports = monitor.run_trace(&packets);
            assert_eq!(reports.len(), 1, "{}", spec.name());
            let lane = &reports[0].lanes[0];
            assert_eq!(lane.sampler, spec.name());
            assert!(lane.sampled_packets <= reports[0].packets);
        }
    }

    #[test]
    fn rate_tags_follow_the_requested_grid_even_for_unrated_specs() {
        // Smart sampling ignores with_rate(), but its lanes must still be
        // tagged with the requested grid rates so rate-keyed aggregation
        // (lanes_at_rate) finds them.
        let rates = [0.001, 0.5];
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Smart { threshold: 50.0 })
            .rates(&rates)
            .runs(3)
            .seed(9)
            .build();
        let reports = monitor.run_trace(&skewed_bin(10, 0.0));
        let report = &reports[0];
        for &rate in &rates {
            assert_eq!(report.lanes_at_rate(rate).count(), 3, "rate {rate}");
        }
        assert!(report.lanes.iter().all(|l| l.sampler == "smart"));
    }

    #[test]
    fn zero_bin_length_is_one_unbounded_bin() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .bin_length(Timestamp::ZERO)
            .build();
        let mut packets = skewed_bin(5, 0.0);
        packets.extend(skewed_bin(5, 10_000.0));
        let reports = monitor.run_trace(&packets);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].packets, packets.len() as u64);
    }

    #[test]
    fn empty_trace_produces_no_reports() {
        let mut monitor = Monitor::builder().build();
        assert!(monitor.run_trace(&[]).is_empty());
        let mut parallel = Monitor::builder().threads(4).build();
        assert!(parallel.run_trace(&[]).is_empty());
    }

    #[test]
    fn multi_thread_run_trace_is_bit_identical() {
        // Two populated bins separated by an idle bin, several rates × runs,
        // and a top-k backend: the parallel whole-bin path must reproduce
        // the packet-by-packet reports exactly, for any thread count. The
        // first bin's 1200 packets cross the parallel-segment threshold, so
        // the fan-out branch really runs.
        let mut packets = skewed_bin(15, 0.0);
        packets.extend(skewed_bin(9, 130.0));
        let build = |threads: usize| {
            Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.01 })
                .rates(&[0.05, 0.3])
                .runs(3)
                .topk(crate::spec::TopKSpec::SpaceSaving { capacity: 16 })
                .bin_length(Timestamp::from_secs_f64(60.0))
                .seed(7)
                .threads(threads)
                .build()
        };
        let baseline = build(1).run_trace(&packets);
        assert_eq!(baseline.len(), 3, "bins 0, 1 (idle) and 2");
        for threads in [2, 3, 8] {
            let mut monitor = build(threads);
            assert_eq!(monitor.threads(), threads);
            assert_eq!(monitor.run_trace(&packets), baseline, "{threads} threads");
        }
    }

    #[test]
    fn parallel_run_trace_continues_a_pushed_bin() {
        // Mixing the entry points: packets pushed one at a time, then the
        // rest of the trace run as a buffered batch, must match a pure
        // sequential monitor.
        let packets = skewed_bin(10, 0.0);
        let build = |threads: usize| {
            Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.4 })
                .bin_length(Timestamp::from_secs_f64(60.0))
                .seed(5)
                .threads(threads)
                .build()
        };
        let mut sequential = build(1);
        let mut mixed = build(2);
        let mut seq_reports = Vec::new();
        for p in &packets[..25] {
            seq_reports.extend(sequential.push(p));
            mixed.push(p);
        }
        seq_reports.extend(sequential.run_trace(&packets[25..]));
        let mixed_reports = mixed.run_trace(&packets[25..]);
        assert_eq!(seq_reports, mixed_reports);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let monitor = Monitor::builder().threads(0).build();
        assert!(monitor.threads() >= 1);
    }

    #[test]
    fn rate_lookup_survives_inexact_float_arithmetic() {
        // 0.1 + 0.2 - 0.2 is one ulp away from 0.1: a grid built from
        // arithmetic must still be addressable by the "same" literal rate,
        // and vice versa. Exact f64 == matching used to return nothing here.
        let computed: f64 = 0.1 + 0.2 - 0.2;
        assert_ne!(computed.to_bits(), 0.1f64.to_bits(), "premise of the test");
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.0 })
            .rates(&[computed, 0.5])
            .runs(3)
            .seed(21)
            .build();
        let reports = monitor.run_trace(&skewed_bin(20, 0.0));
        let report = &reports[0];
        // The literal finds the computed grid rate...
        assert_eq!(report.rate_id_of(0.1), Some(0));
        assert_eq!(report.lanes_at_rate(0.1).count(), 3);
        // ...the computed value finds itself...
        assert_eq!(report.lanes_at_rate(computed).count(), 3);
        assert_eq!(report.lanes_at_rate(0.5).count(), 3);
        assert!(report.mean_ranking_at_rate(0.5) <= report.mean_ranking_at_rate(0.1));
        // ...and a genuinely different rate matches nothing.
        assert_eq!(report.rate_id_of(0.3), None);
        assert_eq!(report.lanes_at_rate(0.3).count(), 0);
        assert_eq!(report.mean_ranking_at_rate(0.3), 0.0);
        // Index-keyed access agrees with the resolved lookup.
        assert_eq!(report.lanes_at_rate_id(1).count(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "timestamp regressed across push calls")]
    fn regressing_timestamps_across_calls_fail_fast_in_debug() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        monitor.push(&packet(1, 70.0));
        // Older than anything already pushed: the documented non-decreasing
        // contract is violated, so debug builds must fail fast instead of
        // silently folding the packet into the current bin.
        monitor.push(&packet(1, 10.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "timestamps regress inside one batch")]
    fn regressing_timestamps_inside_a_batch_fail_fast_in_debug() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        let batch = PacketBatch::from_records(&[packet(1, 70.0), packet(1, 10.0)]);
        monitor.push_batch(&batch);
    }

    #[test]
    fn reject_policy_surfaces_timestamp_regressions_as_errors() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .drive_policy(DrivePolicy::strict().timestamps(TimestampPolicy::Reject))
            .build();
        let mut sink = Collect::new();
        let forward = PacketBatch::from_records(&[packet(1, 70.0)]);
        monitor
            .try_push_batch_into(&forward, &mut sink)
            .expect("ordered batch is accepted");
        // Across calls: older than everything already pushed.
        let stale = PacketBatch::from_records(&[packet(1, 10.0)]);
        match monitor.try_push_batch_into(&stale, &mut sink) {
            Err(DriveError::TimestampRegression {
                prev_nanos,
                ts_nanos,
                ..
            }) => {
                assert_eq!(prev_nanos, Timestamp::from_secs_f64(70.0).as_nanos());
                assert_eq!(ts_nanos, Timestamp::from_secs_f64(10.0).as_nanos());
            }
            other => panic!("expected TimestampRegression, got {other:?}"),
        }
        // Within one batch: second packet regresses. The rejected batch was
        // not applied, so 80 s is still a legal next timestamp.
        let inner = PacketBatch::from_records(&[packet(1, 80.0), packet(1, 75.0)]);
        assert!(matches!(
            monitor.try_push_batch_into(&inner, &mut sink),
            Err(DriveError::TimestampRegression { .. })
        ));
        assert_eq!(monitor.clamped_timestamps(), 0);
    }

    #[test]
    fn clamp_policy_folds_and_counts_timestamp_regressions() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 1.0 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .drive_policy(DrivePolicy::strict().timestamps(TimestampPolicy::ClampAndCount))
            .build();
        let mut sink = Collect::new();
        let forward = PacketBatch::from_records(&[packet(1, 70.0)]);
        monitor
            .try_push_batch_into(&forward, &mut sink)
            .expect("ordered batch is accepted");
        // One regression across calls + one inside the batch: both fold
        // into the current bin (the historical release behaviour) and both
        // are counted.
        let stale = PacketBatch::from_records(&[packet(2, 10.0), packet(3, 75.0), packet(3, 5.0)]);
        monitor
            .try_push_batch_into(&stale, &mut sink)
            .expect("clamp policy absorbs the regressions");
        assert_eq!(monitor.clamped_timestamps(), 2);
        let report = monitor.finish().expect("bin 1 closes with its packets");
        assert_eq!(report.bin_index, 1);
        assert_eq!(
            report.packets, 4,
            "regressed packets fold into the open bin"
        );
    }

    /// Four populated bins of the same skewed traffic.
    fn four_bins() -> Vec<PacketRecord> {
        let mut packets = skewed_bin(20, 0.0);
        packets.extend(skewed_bin(20, 61.0));
        packets.extend(skewed_bin(20, 122.0));
        packets.extend(skewed_bin(20, 183.0));
        packets
    }

    #[test]
    fn controller_attaches_one_audited_lane_after_the_grid() {
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.1 })
            .rates(&[0.05, 0.5])
            .runs(2)
            .controller(ControllerSpec::aimd_slo())
            .seed(3)
            .build();
        assert_eq!(monitor.lane_count(), 5, "2 rates × 2 runs + controlled");
        assert_eq!(monitor.controlled_lane(), Some(4));
        assert_eq!(monitor.controller_name(), Some("aimd-slo"));
        let reports = monitor.run_trace(&four_bins());
        for report in &reports {
            let trail = report.controller.as_ref().expect("trail on every bin");
            assert_eq!(trail.controller, "aimd-slo");
            assert_eq!(trail.lane, 4);
            assert!(report.lanes[4].controlled);
            assert!(report.lanes[..4].iter().all(|lane| !lane.controlled));
            assert_eq!(report.lanes[4].rate_id, 2, "own rate group after grid");
            assert_eq!(
                trail.applied_rate, report.lanes[4].rate,
                "lane rate is the rate applied during the bin"
            );
        }
        assert_eq!(reports[0].controller.as_ref().unwrap().applied_rate, 0.1);
        // The next bin's applied rate is the previous bin's decision.
        for pair in reports.windows(2) {
            let (prev, next) = (
                pair[0].controller.as_ref().unwrap(),
                pair[1].controller.as_ref().unwrap(),
            );
            assert_eq!(prev.decided_rate, next.applied_rate);
        }
    }

    #[test]
    fn controlled_monitor_is_bit_identical_across_paths_and_threads() {
        let packets = four_bins();
        let build = |threads: usize| {
            Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.1 })
                .rates(&[0.05, 0.3])
                .runs(2)
                .controller(ControllerSpec::model_driven())
                .bin_length(Timestamp::from_secs_f64(60.0))
                .seed(17)
                .threads(threads)
                .build()
        };
        let baseline = build(1).run_trace(&packets);
        assert!(baseline.iter().all(|report| report.controller.is_some()));
        for threads in [2, 4] {
            assert_eq!(build(threads).run_trace(&packets), baseline, "{threads}");
        }
        let mut pushed = build(1);
        let mut reports = Vec::new();
        for packet in &packets {
            reports.extend(pushed.push(packet));
        }
        reports.extend(pushed.finish());
        assert_eq!(reports, baseline, "per-packet push path");
    }

    #[test]
    fn attaching_a_controller_never_perturbs_static_lanes() {
        let packets = four_bins();
        let build = |controlled: bool| {
            let builder = Monitor::builder()
                .sampler(SamplerSpec::Random { rate: 0.1 })
                .rates(&[0.05, 0.3])
                .runs(2)
                .bin_length(Timestamp::from_secs_f64(60.0))
                .seed(23);
            if controlled {
                builder.controller(ControllerSpec::budget_tracking())
            } else {
                builder
            }
            .build()
        };
        let plain = build(false).run_trace(&packets);
        let controlled = build(true).run_trace(&packets);
        assert_eq!(plain.len(), controlled.len());
        for (p, c) in plain.iter().zip(&controlled) {
            assert_eq!(&c.lanes[..p.lanes.len()], &p.lanes[..]);
        }
    }

    #[test]
    fn budget_controller_steers_kept_packets_toward_budget() {
        // 2100 packets per bin at an initial 50% rate keeps ~1050 — far over
        // a 50-packet budget, so the rate must fall bin over bin (clamped at
        // ×0.25 per step) until kept packets approach the budget.
        let spec = ControllerSpec::BudgetTracking {
            budget_per_bin: 50,
            min_rate: 0.001,
            max_rate: 1.0,
            initial_rate: 0.5,
        };
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.1 })
            .controller(spec)
            .bin_length(Timestamp::from_secs_f64(60.0))
            .seed(31)
            .build();
        let reports = monitor.run_trace(&four_bins());
        let lane = monitor.controlled_lane().unwrap();
        let rates: Vec<f64> = reports.iter().map(|r| r.lanes[lane].rate).collect();
        assert!(
            rates.windows(2).all(|w| w[1] < w[0]),
            "rate must fall while over budget: {rates:?}"
        );
        let first = reports.first().unwrap().lanes[lane].sampled_packets;
        let last = reports.last().unwrap().lanes[lane].sampled_packets;
        assert!(
            last < first / 4,
            "kept packets must shrink: {first} → {last}"
        );
    }

    #[test]
    fn non_decreasing_timestamps_never_trip_the_contract_check() {
        // Equal timestamps and bin-boundary jumps are both allowed.
        let mut monitor = Monitor::builder()
            .sampler(SamplerSpec::Random { rate: 0.5 })
            .bin_length(Timestamp::from_secs_f64(60.0))
            .build();
        monitor.push(&packet(1, 10.0));
        monitor.push(&packet(2, 10.0));
        monitor.push(&packet(1, 200.0));
        assert!(monitor.finish().is_some());
    }
}

//! The pipelined worker runtime behind [`MonitorBuilder::threads`].
//!
//! A monitor built with more than one thread no longer fans work out with
//! per-segment scoped spawns and a barrier at every bin close. Instead,
//! `build()` spawns a **persistent** pool once and tears it down on drop:
//!
//! ```text
//!              caller (ingest: split bins, derive keys, route)
//!                │ bounded SPSC work queues, one per worker
//!      ┌─────────┼─────────┬─────────┐
//!      ▼         ▼         ▼         ▼
//!  worker 0   worker 1  worker 2  worker 3     shard w of the ground
//!  (shard 0,  (shard 1,  ...       ...         truth + every lane with
//!   lanes      lanes                           index ≡ w (mod threads)
//!   0,4,8…)    1,5,9…)
//!      │ seal: drained shard sizes, then scored lane reports
//!      └────────┬┴─────────┴─────────┘
//!               ▼
//!           sequencer  — merges shards, ranks the ground truth once,
//!               │        broadcasts the ranking, reassembles the lane
//!               ▼        reports in lane order, runs the control step
//!           out queue  → caller delivers each [`BinReport`] to the sink
//! ```
//!
//! Ingestion, classification and lane scoring **overlap**: while workers
//! classify one segment, the caller is already copying and keying the next,
//! and while the sequencer assembles bin *k*'s report, workers may already
//! be observing bin *k + 1*'s packets. The bounded work queues provide
//! backpressure — a source that outruns the workers blocks in `send`, so
//! peak memory stays `flows + in-flight windows` no matter how long the
//! trace is.
//!
//! # Determinism
//!
//! Reports are **bit-identical** to the single-threaded path because nothing
//! order-dependent is ever split:
//!
//! * every lane sees every packet in stream order with its own RNG — lanes
//!   are *partitioned* across workers (strided, lane `i` on worker
//!   `i % threads`), never shared or reordered;
//! * each ground-truth shard owns a disjoint key subset
//!   ([`flowrank_net::shard_of`] on the packed key) and observes its packets
//!   in stream order, so per-flow counters are exact; the merged drain order
//!   differs from a single table's insertion order, but
//!   [`GroundTruthRanking::new`] re-sorts with a total (size, key) order;
//! * bin totals are sums of per-shard `u64` counters — order-free;
//! * the sequencer is the only thread that seals bins: it consumes the
//!   per-worker seal messages in worker order, reassembles lane reports into
//!   lane order, and runs the controller step exactly where the serial path
//!   does (after scoring, against the still-live ranking), retuning the
//!   controlled lane before handing its worker the token to enter the next
//!   bin.
//!
//! # Ordering and shutdown
//!
//! The out queue is unbounded and FIFO, so the sink sees every bin exactly
//! once in bin order; the caller drains it before every `push_batch` /
//! `finish` call returns, which is what keeps the synchronous API contract
//! ("`push` returns the bins it closed") intact. On drop the runtime
//! enqueues one `Shutdown` behind whatever is in flight, joins every worker,
//! and then joins the sequencer — no detached threads, even when the
//! monitor is dropped mid-bin.
//!
//! # Failure containment
//!
//! Every worker and the sequencer run under `catch_unwind`: a panic on any
//! pool thread is recorded in a shared failure cell **before** that
//! thread's channels drop, so by the time the disconnect cascades (peer
//! workers and the sequencer exit their loops, the caller's out-queue
//! receive fails) the failure is already observable through
//! [`PipelinedRuntime::failure`]. Blocking drains return the failure
//! instead of panicking, the monitor converts it into
//! [`DriveError::WorkerPanicked`](crate::DriveError::WorkerPanicked), and
//! `Drop` joins the (already self-terminated) threads without the old
//! double-panic abort. Shards and lanes may hold poisoned mutexes after a
//! failure; the runtime's own locks are poison-tolerant, and the monitor
//! never trusts state behind a recorded failure.

use std::ops::Range;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use flowrank_core::metrics::{GroundTruthRanking, SizedFlow};
use flowrank_net::{
    shard_of, AnyFlowKey, CompactKey, FlowDefinition, FlowTable, PacketBatch, Timestamp,
};

use crate::monitor::{ControllerState, Lane};
use crate::pipeline::ReportSink;
use crate::report::{BinReport, LaneReport};

/// What a pool thread's `catch_unwind` recorded: which thread panicked
/// (`0..threads` for workers, `threads` for the sequencer) and the panic
/// payload's message. First failure wins; secondary panics on peers (e.g.
/// from poisoned shard mutexes) are caught and discarded.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeFailure {
    pub(crate) worker: usize,
    /// Carried for `{:?}` diagnostics (test failures, logs); the typed
    /// error surface exposes only the worker index and bin.
    #[allow(dead_code)]
    pub(crate) message: String,
}

/// Records a panic payload into the shared failure cell (first wins). Must
/// run while the panicking thread's channel endpoints are still alive, so
/// no other thread can observe the disconnect before the failure is
/// readable.
fn record_failure(
    cell: &Mutex<Option<RuntimeFailure>>,
    worker: usize,
    payload: &(dyn std::any::Any + Send),
) {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    let mut slot = cell.lock().unwrap_or_else(|poison| poison.into_inner());
    if slot.is_none() {
        *slot = Some(RuntimeFailure { worker, message });
    }
}

/// Depth of each worker's bounded segment queue. This is the backpressure
/// knob: the caller blocks once any worker falls this many segments behind,
/// bounding in-flight memory to a handful of segment buffers.
const SEGMENT_QUEUE_DEPTH: usize = 4;

/// Packets per dispatched segment buffer. Large within-bin segments are cut
/// into pieces of this size so ingest (key derivation + copy) and worker
/// classification overlap instead of serialising on one giant hand-off.
const DISPATCH_CHUNK_PACKETS: usize = 4096;

/// One decoded, keyed, routed slice of the packet stream, shared read-only
/// with every worker. Buffers are recycled through a small pool once all
/// workers drop their handles.
#[derive(Debug, Default)]
struct SegmentBuf {
    batch: PacketBatch,
    /// Flow key of each packet, derived once by the ingest stage.
    keys: Vec<AnyFlowKey>,
    /// Ground-truth shard (= worker index) of each packet.
    routes: Vec<u16>,
}

/// Work-queue protocol, identical for every worker: the caller broadcasts
/// the same message sequence to all queues, which is what makes the seal
/// handshake deadlock-free (no worker can ever be waiting on a message
/// another worker already consumed).
enum ToWorker {
    /// Observe a segment: classify this worker's route into its shard,
    /// offer the whole segment to each of its lanes.
    Segment(Arc<SegmentBuf>),
    /// Close the current bin: drain the shard to the sequencer, score the
    /// lanes against the ranking it broadcasts back.
    Seal {
        bin_index: u64,
        bin_start: Timestamp,
    },
    /// Quiescence barrier: acknowledge once everything before it is done
    /// (used before the caller touches shards/lanes inline).
    Flush,
    /// Exit the worker loop.
    Shutdown,
}

/// A worker's half of the seal handshake: its shard drained to flow sizes.
struct WorkerSeal {
    bin_index: u64,
    bin_start: Timestamp,
    sizes: Vec<SizedFlow<AnyFlowKey>>,
    packets: u64,
}

/// Sequencer → worker control messages during a seal.
enum SequencerCtl {
    /// The bin's merged ground-truth ranking; score your lanes against it.
    Score(Arc<GroundTruthRanking<AnyFlowKey>>),
    /// Controller step done; the controlled lane is retuned, enter the
    /// next bin. Sent only to the worker owning the controlled lane.
    Proceed,
}

/// One classification worker: owns ground-truth shard `index` and every
/// lane whose index is congruent to `index` mod `threads`. The strided lane
/// partition spreads a rate grid's expensive high-rate lanes evenly across
/// workers (a contiguous split would hand one worker the whole top rate
/// group).
struct Worker {
    index: usize,
    top_t: usize,
    waits_for_proceed: bool,
    shard: Arc<Mutex<FlowTable<AnyFlowKey>>>,
    lanes: Vec<Arc<Mutex<Lane>>>,
    work_rx: Receiver<ToWorker>,
    flush_tx: SyncSender<()>,
    seal_tx: SyncSender<WorkerSeal>,
    report_tx: SyncSender<Vec<LaneReport>>,
    ctl_rx: Receiver<SequencerCtl>,
}

impl Worker {
    fn run(&mut self) {
        while let Ok(msg) = self.work_rx.recv() {
            match msg {
                ToWorker::Segment(seg) => self.observe(&seg),
                ToWorker::Seal {
                    bin_index,
                    bin_start,
                } => {
                    if !self.seal(bin_index, bin_start) {
                        return;
                    }
                }
                ToWorker::Flush => {
                    if self.flush_tx.send(()).is_err() {
                        return;
                    }
                }
                ToWorker::Shutdown => return,
            }
        }
    }

    fn observe(&mut self, seg: &SegmentBuf) {
        let route = self.index as u16;
        {
            let mut shard = self.shard.lock().expect("shard mutex");
            for (i, &r) in seg.routes.iter().enumerate() {
                if r == route {
                    shard.observe_keyed_parts(
                        seg.keys[i],
                        seg.batch.timestamp(i),
                        seg.batch.length(i),
                        seg.batch.tcp_seq(i),
                    );
                }
            }
        }
        let range = 0..seg.batch.len();
        for lane in &self.lanes {
            lane.lock()
                .expect("lane mutex")
                .offer_batch(&seg.keys, &seg.batch, range.clone());
        }
    }

    /// One seal handshake. Returns false when a channel closed underneath
    /// (the runtime is shutting down abnormally), telling the loop to exit.
    fn seal(&mut self, bin_index: u64, bin_start: Timestamp) -> bool {
        let (sizes, packets) = {
            let mut shard = self.shard.lock().expect("shard mutex");
            let sizes = shard
                .iter_sizes()
                .map(|(key, packets)| SizedFlow { key, packets })
                .collect();
            let packets = shard.total_packets();
            shard.clear();
            (sizes, packets)
        };
        if self
            .seal_tx
            .send(WorkerSeal {
                bin_index,
                bin_start,
                sizes,
                packets,
            })
            .is_err()
        {
            return false;
        }
        let truth = match self.ctl_rx.recv() {
            Ok(SequencerCtl::Score(truth)) => truth,
            _ => return false,
        };
        let mut reports = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            reports.push(
                lane.lock()
                    .expect("lane mutex")
                    .close_bin(&truth, self.top_t),
            );
        }
        if self.report_tx.send(reports).is_err() {
            return false;
        }
        if self.waits_for_proceed {
            return matches!(self.ctl_rx.recv(), Ok(SequencerCtl::Proceed));
        }
        true
    }
}

/// The single thread that reassembles bins in deterministic order: for each
/// seal it consumes every worker's shard drain **in worker order**, builds
/// the bin's one ranking, broadcasts it, collects the scored lane chunks
/// back into lane order, runs the controller step, and pushes the finished
/// report onto the (unbounded, FIFO) out queue.
struct Sequencer {
    threads: usize,
    lane_count: usize,
    top_t: usize,
    /// Full lane list in lane order — only touched for the controller
    /// retune, under the controlled lane's mutex, while its worker waits
    /// for `Proceed`.
    lanes: Vec<Arc<Mutex<Lane>>>,
    controller: Option<ControllerState>,
    seal_rx: Vec<Receiver<WorkerSeal>>,
    report_rx: Vec<Receiver<Vec<LaneReport>>>,
    ctl_tx: Vec<SyncSender<SequencerCtl>>,
    out_tx: Sender<BinReport>,
    recycle_rx: Receiver<BinReport>,
}

impl Sequencer {
    fn run(&mut self) {
        // Scatter buffer: worker w's k-th report belongs to lane w + k·n.
        let mut slots: Vec<Option<LaneReport>> = Vec::with_capacity(self.lane_count);
        loop {
            // Workers' seal streams advance in lockstep (every queue carries
            // the same seal sequence), so a plain in-order receive is both
            // deterministic and deadlock-free. Err means the workers are
            // gone: shutdown.
            let Ok(first) = self.seal_rx[0].recv() else {
                return;
            };
            let mut flows = first.sizes;
            let mut packets = first.packets;
            for rx in &self.seal_rx[1..] {
                let Ok(seal) = rx.recv() else { return };
                flows.extend(seal.sizes);
                packets += seal.packets;
            }
            // Each key lives in exactly one shard, so the concatenation has
            // one entry per distinct flow and its length *is* the bin's flow
            // count; the ranking's total (size, key) sort erases the shard
            // drain order.
            let flow_count = flows.len();
            let truth = Arc::new(GroundTruthRanking::new(flows, self.top_t));
            for tx in &self.ctl_tx {
                if tx.send(SequencerCtl::Score(truth.clone())).is_err() {
                    return;
                }
            }
            let mut report = self.recycle_rx.try_recv().unwrap_or_default();
            report.reset();
            slots.clear();
            slots.extend((0..self.lane_count).map(|_| None));
            for (w, rx) in self.report_rx.iter().enumerate() {
                let Ok(chunk) = rx.recv() else { return };
                for (k, lane_report) in chunk.into_iter().enumerate() {
                    slots[w + k * self.threads] = Some(lane_report);
                }
            }
            report
                .lanes
                .extend(slots.drain(..).map(|slot| slot.expect("every lane scored")));
            report.bin_index = first.bin_index;
            report.bin_start = first.bin_start;
            report.packets = packets;
            report.flows = flow_count;
            if let Some(state) = self.controller.as_mut() {
                if let Some((rate, spec)) = state.step(&mut report, &truth, self.top_t) {
                    self.lanes[state.lane]
                        .lock()
                        .expect("lane mutex")
                        .retune(rate, spec);
                }
                // The controlled lane's worker held position until now, so
                // the retune always lands before the next bin's packets.
                let owner = state.lane % self.threads;
                if self.ctl_tx[owner].send(SequencerCtl::Proceed).is_err() {
                    return;
                }
            }
            // The monitor may already be gone (drop mid-stream); workers
            // still need their handshakes drained, so keep looping.
            let _ = self.out_tx.send(report);
        }
    }
}

/// Handle owned by the [`crate::Monitor`]: the caller-facing half of the
/// pipelined runtime (ingest, seal bookkeeping, report delivery, shutdown).
pub(crate) struct PipelinedRuntime {
    threads: usize,
    lane_count: usize,
    controller_name: Option<&'static str>,
    controlled_lane: Option<usize>,
    /// Full lane list, for the inline (small-segment) path.
    lanes: Vec<Arc<Mutex<Lane>>>,
    shards: Vec<Arc<Mutex<FlowTable<AnyFlowKey>>>>,
    work_tx: Vec<SyncSender<ToWorker>>,
    flush_rx: Vec<Receiver<()>>,
    out_rx: Receiver<BinReport>,
    recycle_tx: Sender<BinReport>,
    workers: Vec<JoinHandle<()>>,
    sequencer: Option<JoinHandle<()>>,
    /// First panic recorded by any pool thread's `catch_unwind`
    /// (see [`record_failure`]); read through
    /// [`PipelinedRuntime::failure`].
    failure: Arc<Mutex<Option<RuntimeFailure>>>,
    /// Recycled segment buffers; an entry is free once every worker dropped
    /// its handle (`Arc::strong_count == 1`).
    pool: Vec<Arc<SegmentBuf>>,
    /// Seals dispatched whose reports have not yet reached the sink.
    pending_seals: usize,
    /// Segments dispatched since the last quiescence point (flush or seal).
    dirty: bool,
}

impl PipelinedRuntime {
    /// Spawns `threads` workers plus the sequencer. Called once from
    /// `MonitorBuilder::build`; the pool lives until the monitor drops.
    pub(crate) fn spawn(
        lanes: Vec<Lane>,
        controller: Option<ControllerState>,
        threads: usize,
        top_t: usize,
    ) -> Self {
        debug_assert!(threads > 1);
        let lane_count = lanes.len();
        let controller_name = controller.as_ref().map(|state| state.name());
        let controlled_lane = controller.as_ref().map(|state| state.lane);
        let lanes: Vec<Arc<Mutex<Lane>>> = lanes
            .into_iter()
            .map(|lane| Arc::new(Mutex::new(lane)))
            .collect();
        let shards: Vec<Arc<Mutex<FlowTable<AnyFlowKey>>>> = (0..threads)
            .map(|_| Arc::new(Mutex::new(FlowTable::new())))
            .collect();
        let (out_tx, out_rx) = channel();
        let (recycle_tx, recycle_rx) = channel();
        let failure: Arc<Mutex<Option<RuntimeFailure>>> = Arc::new(Mutex::new(None));
        let mut work_tx = Vec::with_capacity(threads);
        let mut flush_rx = Vec::with_capacity(threads);
        let mut seal_rx = Vec::with_capacity(threads);
        let mut report_rx = Vec::with_capacity(threads);
        let mut ctl_tx = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for (w, shard) in shards.iter().enumerate() {
            let (wtx, wrx) = sync_channel(SEGMENT_QUEUE_DEPTH);
            let (ftx, frx) = sync_channel(1);
            let (stx, srx) = sync_channel(1);
            let (rtx, rrx) = sync_channel(1);
            let (ctx, crx) = sync_channel(2);
            let mut worker = Worker {
                index: w,
                top_t,
                waits_for_proceed: controlled_lane.is_some_and(|lane| lane % threads == w),
                shard: Arc::clone(shard),
                lanes: lanes.iter().skip(w).step_by(threads).cloned().collect(),
                work_rx: wrx,
                flush_tx: ftx,
                seal_tx: stx,
                report_tx: rtx,
                ctl_rx: crx,
            };
            let failure = Arc::clone(&failure);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("flowrank-worker-{w}"))
                    .spawn(move || {
                        // `worker` lives outside the catch: a panic is
                        // recorded while the worker's channels are still
                        // open, so no peer can see the disconnect before
                        // the failure is readable.
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run()));
                        if let Err(payload) = result {
                            record_failure(&failure, w, payload.as_ref());
                        }
                    })
                    .expect("spawn flowrank worker"),
            );
            work_tx.push(wtx);
            flush_rx.push(frx);
            seal_rx.push(srx);
            report_rx.push(rrx);
            ctl_tx.push(ctx);
        }
        let mut sequencer = Sequencer {
            threads,
            lane_count,
            top_t,
            lanes: lanes.clone(),
            controller,
            seal_rx,
            report_rx,
            ctl_tx,
            out_tx,
            recycle_rx,
        };
        let sequencer_failure = Arc::clone(&failure);
        let sequencer = std::thread::Builder::new()
            .name("flowrank-sequencer".into())
            .spawn(move || {
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sequencer.run()));
                if let Err(payload) = result {
                    // The sequencer is reported as worker index `threads`.
                    record_failure(&sequencer_failure, threads, payload.as_ref());
                }
            })
            .expect("spawn flowrank sequencer");
        PipelinedRuntime {
            threads,
            lane_count,
            controller_name,
            controlled_lane,
            lanes,
            shards,
            work_tx,
            flush_rx,
            out_rx,
            recycle_tx,
            workers,
            sequencer: Some(sequencer),
            failure,
            pool: Vec::new(),
            pending_seals: 0,
            dirty: false,
        }
    }

    pub(crate) fn lane_count(&self) -> usize {
        self.lane_count
    }

    pub(crate) fn controller_name(&self) -> Option<&'static str> {
        self.controller_name
    }

    pub(crate) fn controlled_lane(&self) -> Option<usize> {
        self.controlled_lane
    }

    /// Cuts a within-bin segment into pipeline chunks, each copied into a
    /// recycled buffer with its keys and shard routes derived once, and
    /// broadcasts them to every worker's bounded queue (identical order on
    /// every queue — the invariant the seal handshake relies on).
    pub(crate) fn dispatch_segment(
        &mut self,
        definition: FlowDefinition,
        batch: &PacketBatch,
        range: Range<usize>,
    ) {
        let threads = self.threads;
        let mut start = range.start;
        while start < range.end {
            let end = (start + DISPATCH_CHUNK_PACKETS).min(range.end);
            let mut buf = self.take_buf();
            {
                let seg = Arc::get_mut(&mut buf).expect("pooled segment is uniquely owned");
                let SegmentBuf {
                    batch: seg_batch,
                    keys,
                    routes,
                } = seg;
                seg_batch.clear();
                keys.clear();
                routes.clear();
                seg_batch.extend_from_batch(batch, start..end);
                keys.extend((start..end).map(|i| batch.flow_key(i, definition)));
                routes.extend(keys.iter().map(|key| shard_of(key.pack(), threads) as u16));
            }
            for tx in &self.work_tx {
                let _ = tx.send(ToWorker::Segment(Arc::clone(&buf)));
            }
            self.pool_return(buf);
            self.dirty = true;
            start = end;
        }
    }

    /// Processes a small segment on the calling thread — the per-packet
    /// `push` path, where a channel round-trip would cost more than the
    /// work. Requires quiescence: call only with no pending seals and after
    /// [`PipelinedRuntime::flush`], so no worker touches shards or lanes
    /// concurrently. State updates are identical to the worker path, so
    /// reports stay bit-identical.
    pub(crate) fn observe_inline(
        &mut self,
        keys: &[AnyFlowKey],
        batch: &PacketBatch,
        range: Range<usize>,
    ) {
        debug_assert_eq!(self.pending_seals, 0);
        debug_assert!(!self.dirty);
        {
            let mut shards: Vec<_> = self
                .shards
                .iter()
                .map(|shard| shard.lock().unwrap_or_else(|poison| poison.into_inner()))
                .collect();
            for (slot, i) in range.clone().enumerate() {
                let shard = shard_of(keys[slot].pack(), self.threads);
                shards[shard].observe_keyed_parts(
                    keys[slot],
                    batch.timestamp(i),
                    batch.length(i),
                    batch.tcp_seq(i),
                );
            }
        }
        for lane in &self.lanes {
            lane.lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .offer_batch(keys, batch, range.clone());
        }
    }

    /// Quiescence barrier: returns once every worker has processed
    /// everything dispatched so far. Cheap when the pipe is already drained
    /// (one token round-trip per worker), skipped entirely when nothing was
    /// dispatched since the last barrier.
    pub(crate) fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        for tx in &self.work_tx {
            let _ = tx.send(ToWorker::Flush);
        }
        for rx in &self.flush_rx {
            let _ = rx.recv();
        }
        self.dirty = false;
    }

    /// Asks the pool to close the current bin. The seal rides the same
    /// queues as the segments, so it lands after everything already
    /// dispatched; the finished report surfaces on the out queue and is
    /// delivered by [`PipelinedRuntime::drain_into`]. A completed seal is a
    /// quiescence point, so `dirty` resets.
    pub(crate) fn dispatch_seal(&mut self, bin_index: u64, bin_start: Timestamp) {
        for tx in &self.work_tx {
            let _ = tx.send(ToWorker::Seal {
                bin_index,
                bin_start,
            });
        }
        self.pending_seals += 1;
        self.dirty = false;
    }

    /// Delivers any already-finished reports without blocking — called
    /// opportunistically mid-batch so sinks see bins as they seal, while
    /// ingest keeps overlapping with in-flight classification.
    pub(crate) fn try_drain_into<K: ReportSink + ?Sized>(&mut self, sink: &mut K) {
        while self.pending_seals > 0 {
            match self.out_rx.try_recv() {
                Ok(report) => self.deliver(report, sink),
                Err(_) => break,
            }
        }
    }

    /// Blocks until every dispatched seal's report has reached the sink —
    /// the tail barrier that keeps `push_batch` synchronous: all bins a
    /// call closed are delivered before it returns. When the pool died
    /// underneath (a worker or sequencer panicked), returns the recorded
    /// failure instead of panicking; outstanding seals are forfeited.
    pub(crate) fn drain_into<K: ReportSink + ?Sized>(
        &mut self,
        sink: &mut K,
    ) -> Result<(), RuntimeFailure> {
        while self.pending_seals > 0 {
            match self.out_rx.recv() {
                Ok(report) => self.deliver(report, sink),
                Err(_) => {
                    // The pool is gone; no report will ever arrive for the
                    // outstanding seals. The disconnect can only cascade
                    // after the panicking thread recorded its failure.
                    self.pending_seals = 0;
                    return Err(self.failure().unwrap_or(RuntimeFailure {
                        worker: 0,
                        message: "worker pool disconnected".to_string(),
                    }));
                }
            }
        }
        Ok(())
    }

    /// The first panic recorded by any pool thread, if one has happened.
    pub(crate) fn failure(&self) -> Option<RuntimeFailure> {
        self.failure
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    fn deliver<K: ReportSink + ?Sized>(&mut self, report: BinReport, sink: &mut K) {
        sink.accept(&report);
        self.pending_seals -= 1;
        // Hand the shell back to the sequencer for the next bin.
        let _ = self.recycle_tx.send(report);
    }

    fn take_buf(&mut self) -> Arc<SegmentBuf> {
        for i in 0..self.pool.len() {
            if Arc::strong_count(&self.pool[i]) == 1 {
                return self.pool.swap_remove(i);
            }
        }
        Arc::new(SegmentBuf::default())
    }

    fn pool_return(&mut self, buf: Arc<SegmentBuf>) {
        // In-flight segments are bounded by the queue depth, so the pool
        // stays small; the cap only guards pathological sink behaviour.
        if self.pool.len() < SEGMENT_QUEUE_DEPTH + self.threads + 2 {
            self.pool.push(buf);
        }
    }
}

impl Drop for PipelinedRuntime {
    fn drop(&mut self) {
        // One Shutdown per queue, behind whatever is still in flight. Every
        // queue has carried the identical message sequence, so no worker can
        // be stuck mid-handshake waiting for a peer: seal handshakes always
        // complete (the sequencer never blocks — its out queue is
        // unbounded), flush acks are buffered, and then Shutdown is read.
        for tx in &self.work_tx {
            let _ = tx.send(ToWorker::Shutdown);
        }
        // Every pool thread catches its own panic (recording it in the
        // failure cell), so these joins cannot error; a poisoned monitor
        // drops cleanly instead of escalating to a double-panic abort.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // With every worker gone the seal senders are closed; the sequencer
        // sees the disconnect and exits.
        if let Some(handle) = self.sequencer.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for PipelinedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedRuntime")
            .field("threads", &self.threads)
            .field("lane_count", &self.lane_count)
            .field("pending_seals", &self.pending_seals)
            .finish_non_exhaustive()
    }
}

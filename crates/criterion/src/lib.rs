//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in environments without network access, so the real
//! crates.io `criterion` cannot be fetched. This crate re-implements the
//! small slice of its API the `flowrank-bench` benches use — benchmark
//! groups, `bench_function`, throughput annotation and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock measurement loop. Numbers are reported as mean ± std-dev per
//! iteration together with the derived element throughput, which is all the
//! flowrank benches need for before/after comparisons. Swapping in the real
//! criterion is a one-line change in the workspace manifest.
//!
//! Two harness affordances mirror the real crate's workflow:
//!
//! * `--test` on the bench binary (i.e. `cargo bench -- --test`) runs every
//!   benchmark once with a minimal budget — the CI smoke mode that proves
//!   the benches still compile and execute without paying measurement time.
//! * The `BENCH_JSON` environment variable names a file to append one JSON
//!   line per benchmark to (`{"group":…,"name":…,"threads":…,"mean_ns":…,
//!   "std_ns":…,"samples":…,"melem_per_s":…}`), which
//!   `scripts/bench_snapshot.sh` uses to keep `BENCH_throughput.json`
//!   machine-readable.
//! * `--threads N` on the bench binary (i.e. `cargo bench -- --threads 4`)
//!   sets the core-count dimension a scaling bench should run at. The value
//!   is surfaced through [`Criterion::threads`]; a bench opts in by
//!   building its workload at that width and labelling the group with
//!   [`BenchmarkGroup::thread_count`], which stamps the `threads` field on
//!   every JSON line (default 1, the serial configuration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group, mirroring criterion's enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver. One instance is shared by every group.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    threads: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // `cargo bench -- --test` parity with the real criterion: run
            // every bench once, skip measurement.
            test_mode: std::env::args().any(|a| a == "--test"),
            threads: parse_threads(std::env::args()),
        }
    }
}

impl Criterion {
    /// The worker-thread count requested on the command line via
    /// `--threads N` (default 1). Scaling benches read this to size their
    /// workload — e.g. `Monitor::builder().threads(c.threads())` — so one
    /// bench binary covers the whole core-count sweep that
    /// `scripts/bench_snapshot.sh` drives.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
            threads: 1,
            test_mode,
        }
    }
}

/// Parses `--threads N` / `--threads=N` from a bench binary's argv.
/// Returns 1 (the serial configuration) when absent or malformed — a bench
/// run must never fail because of a label flag.
fn parse_threads<I: Iterator<Item = String>>(mut args: I) -> usize {
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            args.next()
        } else {
            arg.strip_prefix("--threads=").map(str::to_string)
        };
        if let Some(n) = value.and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    1
}

/// A named group of benchmarks sharing sample-size/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    threads: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget run before measurement starts (default
    /// 500 ms), mirroring criterion's `warm_up_time`. Warm-up iterations
    /// populate caches, fault in freshly allocated memory and let the
    /// allocator reach steady state, which is what keeps the first measured
    /// samples from dominating the reported standard deviation.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates the group with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Labels every result in the group with a worker-thread count (the
    /// `threads` field of the `BENCH_JSON` lines; default 1). Scaling
    /// benches set this to [`Criterion::threads`] so one JSON stream keeps
    /// the core-count sweep distinguishable.
    pub fn thread_count(&mut self, n: usize) -> &mut Self {
        self.threads = n.max(1);
        self
    }

    /// Measures one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (samples, budget, warmup) = if self.test_mode {
            (2, Duration::ZERO, Duration::ZERO)
        } else {
            (self.sample_size, self.measurement_time, self.warm_up_time)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            budget,
            warmup,
            target_samples: samples,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("  {name:<40} ok (smoke)");
        } else {
            report(
                &self.name,
                name,
                self.threads,
                &bencher.samples,
                self.throughput,
            );
        }
        self
    }

    /// Ends the group (separator line, for parity with criterion).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warmup: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per run,
    /// until the configured sample count or time budget is reached.
    ///
    /// Before measurement the routine is run unrecorded until the group's
    /// warm-up budget elapses (at least once): cold caches, lazily faulted
    /// allocations and allocator warm-up land in the discarded iterations
    /// instead of inflating the first samples' variance.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_started = Instant::now();
        loop {
            let out = routine();
            drop(out);
            if warmup_started.elapsed() >= self.warmup {
                break;
            }
        }
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
        // Guarantee at least one measured sample even on a zero budget.
        if self.samples.is_empty() {
            let t0 = Instant::now();
            let out = routine();
            self.samples.push(t0.elapsed());
            drop(out);
        }
    }
}

fn report(
    group: &str,
    name: &str,
    threads: usize,
    samples: &[Duration],
    throughput: Option<Throughput>,
) {
    let n = samples.len().max(1) as f64;
    let mean_ns = samples.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / n;
    let var_ns = samples
        .iter()
        .map(|d| {
            let x = d.as_nanos() as f64 - mean_ns;
            x * x
        })
        .sum::<f64>()
        / n;
    let std_ns = var_ns.sqrt();
    let melem_per_s = throughput.and_then(|t| match t {
        Throughput::Elements(e) => Some(e as f64 / mean_ns * 1e3),
        Throughput::Bytes(_) => None,
    });
    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => format!(" | {:.2} Melem/s", e as f64 / mean_ns * 1e3),
        Throughput::Bytes(b) => format!(
            " | {:.2} MiB/s",
            b as f64 / mean_ns * 1e9 / (1 << 20) as f64
        ),
    });
    let threads_tag = if threads > 1 {
        format!(" [{threads} threads]")
    } else {
        String::new()
    };
    println!(
        "  {name:<40} {:>12} ± {:<10} ({} samples){}{}",
        format_ns(mean_ns),
        format_ns(std_ns),
        samples.len(),
        rate.unwrap_or_default(),
        threads_tag
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        append_json_line(
            &path,
            group,
            name,
            threads,
            mean_ns,
            std_ns,
            samples.len(),
            melem_per_s,
        );
    }
}

/// Appends one machine-readable result line to `path` (ndjson; the snapshot
/// script assembles the final document). Errors are reported but never fail
/// the bench run.
#[allow(clippy::too_many_arguments)]
fn append_json_line(
    path: &str,
    group: &str,
    name: &str,
    threads: usize,
    mean_ns: f64,
    std_ns: f64,
    samples: usize,
    melem_per_s: Option<f64>,
) {
    use std::io::Write;
    let melem = melem_per_s.map_or("null".to_string(), |m| format!("{m:.4}"));
    let group = json_escape(group);
    let name = json_escape(name);
    let line = format!(
        "{{\"group\":\"{group}\",\"name\":\"{name}\",\"threads\":{threads},\"mean_ns\":{mean_ns:.1},\"std_ns\":{std_ns:.1},\"samples\":{samples},\"melem_per_s\":{melem}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("BENCH_JSON append to {path} failed: {error}");
    }
}

/// Escapes a string for embedding in a JSON string literal (names are
/// arbitrary `&str`s, so quotes, backslashes and control characters must
/// not corrupt the ndjson stream).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a bench group function from a list of `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::ZERO)
            .throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one sample");
    }

    #[test]
    fn warm_up_budget_runs_unmeasured_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-warmup");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(30));
        let mut runs = 0u32;
        group.bench_function("sleepy", |b| {
            b.iter(|| {
                runs += 1;
                std::thread::sleep(Duration::from_millis(5));
            })
        });
        group.finish();
        // ~6 warm-up iterations before the 2 measured samples.
        assert!(runs >= 5, "expected warm-up iterations, got {runs} runs");
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        let argv = |args: &[&str]| {
            args.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        assert_eq!(parse_threads(argv(&["bench", "--threads", "4"])), 4);
        assert_eq!(parse_threads(argv(&["bench", "--threads=2"])), 2);
        assert_eq!(parse_threads(argv(&["bench", "--test"])), 1);
        // Malformed or zero values fall back to the serial default.
        assert_eq!(parse_threads(argv(&["bench", "--threads", "lots"])), 1);
        assert_eq!(parse_threads(argv(&["bench", "--threads=0"])), 1);
        assert_eq!(parse_threads(argv(&["bench"])), 1);
    }

    #[test]
    fn thread_count_labels_the_group() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-threads");
        group.thread_count(4);
        assert_eq!(group.threads, 4);
        group.thread_count(0);
        assert_eq!(group.threads, 1, "zero clamps to the serial default");
    }

    #[test]
    fn json_escape_handles_special_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn formatting_covers_all_ranges() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(1.2e4).ends_with("µs"));
        assert!(format_ns(3.4e6).ends_with("ms"));
        assert!(format_ns(5.0e9).ends_with(" s"));
    }
}

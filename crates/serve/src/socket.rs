//! `source = socket`: a live TCP ndjson listener.
//!
//! The stdin ndjson source covers pipelines (`exporter | flowrank-serve`),
//! but a daemon on a monitoring host receives records over the network.
//! [`listen`] binds a TCP port and pumps newline-delimited JSON records
//! from accepted connections into a
//! [`ChannelSource`] — the non-blocking
//! packet source whose `poll_chunk`/`Pending` contract lets the drive loop
//! idle politely (counted idle polls, stall detection) while the socket is
//! quiet.
//!
//! The pump reuses the exact per-line parser of
//! [`NdjsonRecordSource`](flowrank_monitor::NdjsonRecordSource)
//! ([`parse_ndjson_record`]), so the wire format and the malformed-record
//! contract are identical to the stdin path: a bad line is forwarded as a
//! recoverable [`SourceError::Malformed`] and counted/skipped by the
//! daemon's resilient [`DrivePolicy`](flowrank_monitor::DrivePolicy).
//!
//! Connections are served one at a time, each to EOF — the model is one
//! exporter streaming records, reconnecting if it restarts. The accept
//! loop polls the stop flag between connections and drops the channel
//! sender when it is raised, which ends the stream cleanly on the drive
//! side; a pump blocked mid-connection ends with the process instead.

use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

use flowrank_monitor::{parse_ndjson_record, ChannelSource, SourceError};
use flowrank_net::{NetError, PacketBatch};

/// How often the accept loop re-checks the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Binds `addr` and returns the bound address plus a [`ChannelSource`]
/// fed by a background pump thread for the rest of the process. Pass port
/// `0` to pick a free port (the daemon prints it on startup).
pub fn listen(
    addr: impl ToSocketAddrs,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, ChannelSource)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Non-blocking accepts keep the stop flag honored while idle.
    listener.set_nonblocking(true)?;
    let (sender, source) = ChannelSource::channel();
    std::thread::Builder::new()
        .name("flowrank-serve-socket".to_string())
        .spawn(move || pump(listener, sender, stop))?;
    Ok((bound, source))
}

/// The accept loop: one connection at a time, records forwarded line by
/// line. Returns (dropping the sender, ending the stream) when the stop
/// flag rises or the drive side hangs up.
fn pump(
    listener: TcpListener,
    sender: Sender<Result<PacketBatch, SourceError>>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Within a connection reads block: records arrive when the
                // exporter sends them, and the drive side idles on
                // `Pending` meanwhile.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if !pump_connection(stream, &sender) {
                    return;
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Forwards one connection's records until EOF. Returns `false` when the
/// drive side hung up (the pump should exit).
fn pump_connection(
    stream: std::net::TcpStream,
    sender: &Sender<Result<PacketBatch, SourceError>>,
) -> bool {
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return true, // EOF: exporter done, accept the next one.
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                // One record per chunk, exactly like NdjsonRecordSource.
                let message = match parse_ndjson_record(&line) {
                    Ok(record) => {
                        let mut batch = PacketBatch::new();
                        batch.push_record(&record);
                        Ok(batch)
                    }
                    Err(reason) => Err(SourceError::Malformed(NetError::InvalidField {
                        field: "ndjson record",
                        reason,
                    })),
                };
                if sender.send(message).is_err() {
                    return false;
                }
            }
            Err(_) => return true, // Connection died mid-line: drop it.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrank_monitor::{PacketSource, SourcePoll};
    use std::io::Write;

    fn poll_until<T>(
        source: &mut ChannelSource,
        mut check: impl FnMut(&mut ChannelSource) -> Option<T>,
    ) -> T {
        for _ in 0..400 {
            if let Some(value) = check(source) {
                return value;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("socket source never delivered");
    }

    #[test]
    fn records_flow_from_a_tcp_client_to_the_source() {
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, mut source) = listen("127.0.0.1:0", Arc::clone(&stop)).expect("bind");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client
            .write_all(
                b"{\"ts\":1.0,\"src\":\"10.0.0.1\",\"dst\":\"10.0.0.2\",\"sport\":1,\"dport\":2,\"len\":100,\"proto\":\"udp\"}\n",
            )
            .expect("send record");
        client.flush().expect("flush");
        let packets = poll_until(&mut source, |source| match source.poll_chunk() {
            Ok(SourcePoll::Chunk(batch)) => Some(batch.len()),
            Ok(SourcePoll::Pending) => None,
            other => panic!("unexpected poll: {other:?}"),
        });
        assert_eq!(packets, 1);
        // A malformed line surfaces as a recoverable error, stream intact.
        client.write_all(b"not json\n").expect("send junk");
        client.flush().expect("flush");
        let error = poll_until(&mut source, |source| match source.poll_chunk() {
            Ok(SourcePoll::Pending) => None,
            Err(error) => Some(error),
            other => panic!("unexpected poll: {other:?}"),
        });
        assert!(error.is_recoverable(), "{error:?}");
        // Raising stop ends the stream once the pump notices.
        drop(client);
        stop.store(true, Ordering::Release);
        let ended = poll_until(&mut source, |source| match source.poll_chunk() {
            Ok(SourcePoll::End) => Some(true),
            Ok(SourcePoll::Pending) => None,
            other => panic!("unexpected poll: {other:?}"),
        });
        assert!(ended);
    }
}

//! # flowrank-serve
//!
//! The serving layer: run a [`flowrank_monitor::Monitor`] as a long-lived
//! daemon over *live* sources instead of a finite replay.
//!
//! The paper's monitor is an online device: packets arrive when the link
//! delivers them, and operators poll the current top-k state while the
//! measurement runs. Everything below `flowrank-serve` in the workspace is
//! batch-shaped — a source that ends, a sink that collects — and this crate
//! adds the daemon shell around the same drive loop:
//!
//! * [`config`] — the `key = value` daemon configuration (source selection,
//!   monitor shape, retention, endpoints), hand-parsed because the
//!   workspace is std-only.
//! * [`signal`] — SIGINT/SIGTERM → a shared stop flag, so a
//!   [`StopGate`](flowrank_monitor::StopGate)-wrapped source reports a
//!   clean end-of-stream and the drive loop flushes its final bin on
//!   shutdown.
//! * [`snapshot`] — the rolling-state publisher: every closed bin is folded
//!   into a [`RollingWindow`](flowrank_monitor::RollingWindow), rendered to
//!   JSON, and served to pollers over a tiny HTTP endpoint that reports the
//!   snapshot's age (the source-starvation watchdog: a growing `age_s`
//!   under traffic means the source stopped delivering).
//! * [`socket`] — `source = socket`: a live TCP ndjson listener feeding a
//!   non-blocking [`ChannelSource`](flowrank_monitor::ChannelSource), with
//!   the same wire format and malformed-record contract as the stdin path.
//! * [`fleet_host`] — `tenants = N`: host a whole
//!   [`Fleet`](flowrank_fleet::Fleet) of tenant monitors from one config
//!   file, over the synthetic fleet scenario or tenant-tagged ndjson
//!   records, publishing a fleet-wide snapshot.
//!
//! The binary (`flowrank-serve --config <file>`) wires the three to
//! [`Monitor::try_drive`](flowrank_monitor::Monitor::try_drive) over one of
//! the live sources ([`flowrank_trace::PacedReplay`],
//! [`PcapTailSource`](flowrank_monitor::PcapTailSource),
//! [`NdjsonRecordSource`](flowrank_monitor::NdjsonRecordSource)). Memory is
//! bounded for an indefinite run: one chunk of packets, the monitor's
//! per-bin state, and `retain_bins` compact summaries.

#![warn(missing_docs)]
// `forbid(unsafe_code)` is the workspace norm, but the signal module needs
// one FFI call (`signal(2)`) — the workspace has no libc dependency.
#![deny(unsafe_code)]

pub mod config;
pub mod fleet_host;
#[allow(unsafe_code)]
pub mod signal;
pub mod snapshot;
pub mod socket;

pub use config::{ConfigError, OutputKind, ServeConfig, SourceKind};
pub use fleet_host::{build_fleet, run_fleet, FleetFinal};
pub use snapshot::{PublishSink, SnapshotPublisher};

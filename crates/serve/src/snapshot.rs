//! The rolling-state publisher and its poll endpoint.
//!
//! [`PublishSink`] is the daemon's primary [`ReportSink`]: each closed bin
//! is folded into a bounded [`RollingWindow`], the window is rendered to
//! one JSON object, and the rendered snapshot is swapped into a
//! [`SnapshotPublisher`] that any number of pollers read concurrently.
//!
//! The endpoint wraps every response as
//! `{"age_s": <seconds since last publish>, "state": <snapshot|null>}`.
//! `age_s` is the **source-starvation watchdog**: the monitor only
//! publishes when a bin closes, so a poller that sees `age_s` grow far past
//! the bin length knows the source stopped delivering — even while the
//! daemon itself is healthy and politely idle-polling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flowrank_monitor::{BinReport, ReportSink, RollingWindow, SinkError};

#[derive(Debug)]
struct Shared {
    json: String,
    published_at: Option<Instant>,
}

/// A thread-safe slot holding the latest rendered snapshot, plus the tiny
/// HTTP endpoint that serves it.
#[derive(Debug, Clone)]
pub struct SnapshotPublisher {
    shared: Arc<Mutex<Shared>>,
}

impl Default for SnapshotPublisher {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotPublisher {
    /// An empty publisher: polls answer `"state": null` until the first
    /// [`SnapshotPublisher::publish`].
    pub fn new() -> Self {
        SnapshotPublisher {
            shared: Arc::new(Mutex::new(Shared {
                json: String::new(),
                published_at: None,
            })),
        }
    }

    /// Replaces the current snapshot.
    pub fn publish(&self, json: &str) {
        let mut shared = self.shared.lock().expect("snapshot lock");
        shared.json.clear();
        shared.json.push_str(json);
        shared.published_at = Some(Instant::now());
    }

    /// The response body a poller would receive right now.
    pub fn render_poll(&self) -> String {
        let shared = self.shared.lock().expect("snapshot lock");
        match shared.published_at {
            None => "{\"age_s\":null,\"state\":null}".to_string(),
            Some(at) => format!(
                "{{\"age_s\":{:.3},\"state\":{}}}",
                at.elapsed().as_secs_f64(),
                shared.json
            ),
        }
    }

    /// Binds `addr` and serves snapshot polls from a background thread for
    /// the rest of the process. Returns the bound address (pass port `0`
    /// to pick a free one). Each connection receives one HTTP/1.1 response
    /// with the [`SnapshotPublisher::render_poll`] body and is closed —
    /// enough for `curl`, `nc`, or a scraper.
    pub fn serve(&self, addr: impl ToSocketAddrs) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let publisher = self.clone();
        std::thread::Builder::new()
            .name("flowrank-serve-snapshot".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(mut stream) = stream else { continue };
                    // Drain the request up to the end of its headers (best
                    // effort — plain `nc` sends nothing, so each read is
                    // capped at 200 ms). Clients may deliver the request in
                    // several writes; answering after the first one would
                    // close the socket with bytes still in flight, and the
                    // resulting RST eats the response.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut scratch = [0u8; 1024];
                    let mut filled = 0;
                    loop {
                        match stream.read(&mut scratch[filled..]) {
                            Ok(0) => break,
                            Ok(n) => {
                                filled += n;
                                let headers_done = scratch[..filled]
                                    .windows(4)
                                    .any(|w| w == b"\r\n\r\n");
                                if headers_done || filled == scratch.len() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    let body = publisher.render_poll();
                    let _ = write!(
                        stream,
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    );
                }
            })?;
        Ok(bound)
    }
}

/// The daemon's report sink: rolling window + snapshot publication + the
/// optional bin-count limiter.
#[derive(Debug)]
pub struct PublishSink {
    window: RollingWindow,
    publisher: SnapshotPublisher,
    scratch: String,
    /// Raise `stop` after this many bins (`0` = never): the clean-exit
    /// hook smoke tests and finite serving runs use.
    max_bins: u64,
    stop: Option<Arc<AtomicBool>>,
}

impl PublishSink {
    /// A sink retaining `retain_bins` summaries and publishing each new
    /// snapshot to `publisher`.
    pub fn new(retain_bins: usize, publisher: SnapshotPublisher) -> Self {
        PublishSink {
            window: RollingWindow::new(retain_bins),
            publisher,
            scratch: String::new(),
            max_bins: 0,
            stop: None,
        }
    }

    /// Raises `stop` once `max_bins` bins have closed (`0` disables).
    pub fn stop_after(mut self, max_bins: u64, stop: Arc<AtomicBool>) -> Self {
        self.max_bins = max_bins;
        self.stop = Some(stop);
        self
    }

    /// The rolling window behind the snapshot.
    pub fn window(&self) -> &RollingWindow {
        &self.window
    }
}

impl ReportSink for PublishSink {
    fn accept(&mut self, report: &BinReport) {
        self.window.accept(report);
        self.window.render_json(&mut self.scratch);
        self.publisher.publish(&self.scratch);
        if self.max_bins > 0 && self.window.bins_seen() >= self.max_bins {
            if let Some(stop) = &self.stop {
                stop.store(true, Ordering::Release);
            }
        }
    }

    fn emit(&mut self, report: &BinReport) -> Result<(), SinkError> {
        self.accept(report);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    #[test]
    fn polls_report_null_then_the_published_state_with_age() {
        let publisher = SnapshotPublisher::new();
        assert_eq!(publisher.render_poll(), "{\"age_s\":null,\"state\":null}");
        publisher.publish("{\"bins_seen\":3}");
        let poll = publisher.render_poll();
        assert!(poll.starts_with("{\"age_s\":0."), "{poll}");
        assert!(poll.ends_with(",\"state\":{\"bins_seen\":3}}"), "{poll}");
    }

    #[test]
    fn the_endpoint_answers_http_polls() {
        let publisher = SnapshotPublisher::new();
        publisher.publish("{\"ok\":true}");
        let addr = publisher.serve("127.0.0.1:0").expect("bind");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("request");
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut body = String::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            body = line.trim().to_string();
        }
        assert!(body.contains("\"state\":{\"ok\":true}"), "{body}");
    }
}

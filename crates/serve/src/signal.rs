//! SIGINT/SIGTERM → a shared stop flag.
//!
//! The daemon's shutdown path is the drive loop's own end-of-stream path: a
//! [`StopGate`](flowrank_monitor::StopGate)-wrapped source checks the flag
//! on every poll and reports a clean end when it is raised, so
//! [`Monitor::try_drive`](flowrank_monitor::Monitor::try_drive) flushes the
//! final bin and returns its stats — no state is torn down mid-bin.
//!
//! The workspace carries no `libc` dependency, so registration goes through
//! one raw FFI call to `signal(2)`. The handler does the only
//! async-signal-safe thing a handler can: a relaxed atomic store.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

/// The installed flag, as a leaked `Arc<AtomicBool>` pointer the handler
/// can reach. Zero until [`install`] runs.
static STOP_FLAG: AtomicUsize = AtomicUsize::new(0);

extern "C" fn on_signal(_signum: i32) {
    let ptr = STOP_FLAG.load(Ordering::Acquire) as *const AtomicBool;
    if !ptr.is_null() {
        // SAFETY: the pointer came from `Arc::into_raw` in `install` and is
        // deliberately never released, so it stays valid for the process
        // lifetime. An atomic store is async-signal-safe.
        unsafe { (*ptr).store(true, Ordering::Release) };
    }
}

/// Routes SIGINT and SIGTERM to `stop`. The flag is leaked (the handler
/// may fire at any point for the rest of the process); installing twice
/// replaces the target and leaks the previous flag too. On non-unix
/// platforms this only registers the flag — nothing raises it.
pub fn install(stop: Arc<AtomicBool>) {
    let ptr = Arc::into_raw(stop) as usize;
    STOP_FLAG.store(ptr, Ordering::Release);
    #[cfg(unix)]
    // SAFETY: `on_signal` is an `extern "C" fn(i32)` as `signal(2)`
    // requires, and touches only async-signal-safe state.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_handler_raises_the_installed_flag() {
        let stop = Arc::new(AtomicBool::new(false));
        install(Arc::clone(&stop));
        // Call the handler directly instead of raising a real signal: the
        // test harness shares the process, and the handler body is the
        // part this pins.
        on_signal(SIGINT_LIKE);
        assert!(stop.load(Ordering::Acquire));
    }

    const SIGINT_LIKE: i32 = 2;
}

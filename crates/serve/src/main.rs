//! `flowrank-serve` — run a monitor as a long-lived daemon over a live
//! source. See `flowrank-serve --example-config` for the configuration
//! surface and the crate docs for the architecture.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

use flowrank_monitor::{
    CsvSink, DriveStats, Monitor, NdjsonRecordSource, NdjsonSink, PacketSource, PcapTailSource,
    ReportSink, StopGate, Tee,
};
use flowrank_net::Timestamp;
use flowrank_serve::{signal, OutputKind, PublishSink, ServeConfig, SnapshotPublisher, SourceKind};
use flowrank_trace::{PacedReplay, Workload};

fn main() -> ExitCode {
    let config_path = match parse_args() {
        Ok(Some(path)) => path,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("flowrank-serve: {message}");
            eprintln!("usage: flowrank-serve --config <file> | --example-config");
            return ExitCode::from(2);
        }
    };
    let config = match ServeConfig::load(&config_path) {
        Ok(config) => config,
        Err(error) => {
            eprintln!("flowrank-serve: {config_path}: {error}");
            return ExitCode::from(2);
        }
    };
    match run(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("flowrank-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> Result<Option<String>, String> {
    let mut config = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                config = Some(args.next().ok_or("--config needs a path")?);
            }
            "--example-config" => {
                print!("{}", ServeConfig::example());
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    config
        .map(Some)
        .ok_or_else(|| "missing --config".to_string())
}

fn run(config: &ServeConfig) -> Result<(), String> {
    let stop = Arc::new(AtomicBool::new(false));
    signal::install(Arc::clone(&stop));

    let publisher = SnapshotPublisher::new();
    if let Some(listen) = &config.snapshot_listen {
        let bound = publisher
            .serve(listen.as_str())
            .map_err(|e| format!("cannot bind snapshot endpoint {listen}: {e}"))?;
        eprintln!("flowrank-serve: snapshot endpoint on http://{bound}/");
    }

    if config.tenants > 0 {
        return run_fleet_mode(config, stop, &publisher);
    }

    let mut monitor = config.monitor();
    let publish = PublishSink::new(config.retain_bins, publisher.clone())
        .stop_after(config.max_bins, Arc::clone(&stop));
    let mut sink = Tee(publish, writer_sink(config)?);

    let started = Instant::now();
    let stats = match config.source {
        SourceKind::Replay => {
            let workload = Workload::by_name(&config.scenario)
                .ok_or_else(|| format!("unknown scenario `{}`", config.scenario))?;
            let stream = if config.window_ms > 0 {
                workload.stream_with_window(
                    config.seed,
                    Timestamp::from_secs_f64(config.window_ms as f64 / 1000.0),
                )
            } else {
                workload.stream(config.seed)
            };
            let mut source = StopGate::new(PacedReplay::new(stream, config.speed), stop);
            drive(&mut monitor, &mut source, &mut sink)?
        }
        SourceKind::Tail => {
            let path = config.pcap.as_ref().expect("validated by config");
            let tail = PcapTailSource::open(path)
                .map_err(|e| format!("cannot open {}: {e}", path.display()))?
                .follow(config.follow);
            let mut source = StopGate::new(tail, stop);
            drive(&mut monitor, &mut source, &mut sink)?
        }
        SourceKind::Ndjson => {
            let stdin = std::io::stdin();
            let mut source = StopGate::new(NdjsonRecordSource::new(stdin.lock()), stop);
            drive(&mut monitor, &mut source, &mut sink)?
        }
        SourceKind::Socket => {
            let (bound, socket) =
                flowrank_serve::socket::listen(config.listen.as_str(), Arc::clone(&stop))
                    .map_err(|e| format!("cannot bind record listener {}: {e}", config.listen))?;
            eprintln!("flowrank-serve: record listener on {bound}");
            let mut source = StopGate::new(socket, stop);
            drive(&mut monitor, &mut source, &mut sink)?
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    let Tee(publish, writer) = sink;
    writer.finish()?;
    let throughput = if elapsed > 0.0 {
        stats.packets as f64 / elapsed
    } else {
        0.0
    };
    // The final line is machine-readable: the bench harness and smoke test
    // parse it.
    println!(
        "{{\"serve\":\"final\",\"bins\":{},\"packets\":{},\"idle_polls\":{},\"malformed_skipped\":{},\"sink_retries\":{},\"elapsed_s\":{elapsed:.3},\"throughput_pps\":{throughput:.0}}}",
        publish.window().bins_seen(),
        stats.packets,
        stats.idle_polls,
        stats.malformed_skipped,
        stats.sink_retries,
    );
    Ok(())
}

/// Fleet mode: host `tenants` monitors behind one slab and print the
/// fleet-shaped final line.
fn run_fleet_mode(
    config: &ServeConfig,
    stop: Arc<AtomicBool>,
    publisher: &flowrank_serve::SnapshotPublisher,
) -> Result<(), String> {
    let started = Instant::now();
    let summary = flowrank_serve::run_fleet(config, stop, publisher)?;
    let elapsed = started.elapsed().as_secs_f64();
    let throughput = if elapsed > 0.0 {
        summary.packets as f64 / elapsed
    } else {
        0.0
    };
    println!(
        "{{\"serve\":\"final\",\"fleet\":true,\"tenants\":{},\"windows\":{},\"bins\":{},\"packets\":{},\"evictions\":{},\"malformed_skipped\":{},\"unknown_tenant_skipped\":{},\"elapsed_s\":{elapsed:.3},\"throughput_pps\":{throughput:.0}}}",
        summary.tenants,
        summary.windows,
        summary.reports,
        summary.packets,
        summary.evictions,
        summary.malformed_skipped,
        summary.unknown_tenant_skipped,
    );
    Ok(())
}

fn drive<S: PacketSource>(
    monitor: &mut Monitor,
    source: &mut S,
    sink: &mut (impl ReportSink + ?Sized),
) -> Result<DriveStats, String> {
    monitor
        .try_drive(source, sink)
        .map_err(|error| format!("drive aborted: {error}"))
}

/// The optional per-bin report stream next to the snapshot.
enum WriterSink {
    None,
    Ndjson(NdjsonSink<Box<dyn std::io::Write>>),
    Csv(CsvSink<Box<dyn std::io::Write>>),
}

impl WriterSink {
    fn finish(self) -> Result<(), String> {
        let result = match self {
            WriterSink::None => return Ok(()),
            WriterSink::Ndjson(sink) => sink.finish().map(drop),
            WriterSink::Csv(sink) => sink.finish().map(drop),
        };
        result.map_err(|e| format!("report stream: {e}"))
    }
}

impl ReportSink for WriterSink {
    fn accept(&mut self, report: &flowrank_monitor::BinReport) {
        match self {
            WriterSink::None => {}
            WriterSink::Ndjson(sink) => sink.accept(report),
            WriterSink::Csv(sink) => sink.accept(report),
        }
    }

    fn emit(
        &mut self,
        report: &flowrank_monitor::BinReport,
    ) -> Result<(), flowrank_monitor::SinkError> {
        match self {
            WriterSink::None => Ok(()),
            WriterSink::Ndjson(sink) => sink.emit(report),
            WriterSink::Csv(sink) => sink.emit(report),
        }
    }
}

fn writer_sink(config: &ServeConfig) -> Result<WriterSink, String> {
    if config.output == OutputKind::None {
        return Ok(WriterSink::None);
    }
    let out: Box<dyn std::io::Write> = match &config.output_path {
        None => Box::new(std::io::stdout()),
        Some(path) => Box::new(
            std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
        ),
    };
    Ok(match config.output {
        OutputKind::None => unreachable!("handled above"),
        OutputKind::Ndjson => WriterSink::Ndjson(NdjsonSink::new(out)),
        OutputKind::Csv => WriterSink::Csv(CsvSink::new(out)),
    })
}

//! Daemon configuration: a hand-parsed `key = value` file.
//!
//! The workspace is std-only, so the config format is deliberately trivial:
//! one `key = value` per line, `#` comments, unknown keys rejected with the
//! line number. [`ServeConfig::example`] renders a fully commented template
//! (`flowrank-serve --example-config`).

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use flowrank_monitor::{DrivePolicy, Monitor, SamplerSpec, TopKSpec};
use flowrank_net::Timestamp;

/// Which live source the daemon drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A scenario workload replayed with wall-clock pacing
    /// ([`flowrank_trace::PacedReplay`]).
    Replay,
    /// A growing pcap file tailed in place
    /// ([`flowrank_monitor::PcapTailSource`]).
    Tail,
    /// Newline-delimited JSON records on stdin
    /// ([`flowrank_monitor::NdjsonRecordSource`]).
    Ndjson,
    /// Newline-delimited JSON records on a live TCP socket
    /// ([`crate::socket::listen`]); requires `listen = addr:port`.
    Socket,
}

/// Where per-bin reports are streamed, besides the rolling snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Snapshot only; no report stream.
    None,
    /// [`flowrank_monitor::NdjsonSink`] to `output_path`.
    Ndjson,
    /// [`flowrank_monitor::CsvSink`] to `output_path`.
    Csv,
}

/// Why a configuration failed to load.
#[derive(Debug)]
pub enum ConfigError {
    /// The file could not be read.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io(e) => write!(f, "cannot read config: {e}"),
            ConfigError::Parse { line, reason } => write!(f, "config line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<io::Error> for ConfigError {
    fn from(e: io::Error) -> Self {
        ConfigError::Io(e)
    }
}

/// The full daemon configuration with every default filled in.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Which source to drive.
    pub source: SourceKind,
    /// Scenario name for `source = replay` (see
    /// [`flowrank_trace::Workload::by_name`]).
    pub scenario: String,
    /// Seed for workload synthesis and the monitor's sampling RNGs.
    pub seed: u64,
    /// Replay speed: trace-seconds per wall-second; `0` replays unpaced.
    pub speed: f64,
    /// Synthesis window for the replay, in milliseconds; `0` keeps the
    /// stream's default.
    pub window_ms: u64,
    /// Capture path for `source = tail`.
    pub pcap: Option<PathBuf>,
    /// Whether the tail source waits for the capture to grow.
    pub follow: bool,
    /// `addr:port` the record listener binds for `source = socket`; port
    /// `0` picks a free port (printed on startup).
    pub listen: String,
    /// Fleet mode: host this many tenant monitors behind one slab
    /// (`flowrank-fleet`). `0` (the default) runs the single-monitor
    /// daemon; with `tenants > 0`, `source` must be `replay` (the fleet
    /// scenario) or `ndjson` (tenant-tagged records) and `threads` become
    /// fleet-level workers.
    pub tenants: u32,
    /// Per-tenant flow-table budget in fleet mode (`0` = unbounded): each
    /// tenant sheds its coldest flows back to this cap, recorded on the
    /// report's eviction trail.
    pub flow_budget: usize,
    /// Sampler template; the monitor retargets it across `rates`.
    pub sampler: SamplerSpec,
    /// Sampling-rate grid.
    pub rates: Vec<f64>,
    /// Independent runs per rate.
    pub runs: usize,
    /// Measurement-bin length in seconds.
    pub bin_secs: f64,
    /// Top-`t` boundary for the detection metric and snapshot top list.
    pub top_t: usize,
    /// Optional memory-bounded top-k backend per lane.
    pub topk: Option<TopKSpec>,
    /// Worker threads (`1` = serial engine).
    pub threads: usize,
    /// Bins retained in the rolling snapshot window.
    pub retain_bins: usize,
    /// Report stream besides the snapshot.
    pub output: OutputKind,
    /// Report stream destination; `None` means stdout.
    pub output_path: Option<PathBuf>,
    /// `addr:port` to serve snapshot polls on; `None` disables the
    /// endpoint. Port `0` picks a free port (printed on startup).
    pub snapshot_listen: Option<String>,
    /// Sleep between idle polls, in milliseconds
    /// ([`DrivePolicy::idle_wait`]).
    pub idle_wait_ms: u64,
    /// Wall-clock stall threshold in seconds
    /// ([`DrivePolicy::stall_timeout`]); `0` disables the wall-time gate.
    pub stall_timeout_secs: f64,
    /// Idle-poll floor for the stall detector
    /// ([`DrivePolicy::stall_polls`]).
    pub stall_polls: u64,
    /// Stop cleanly after this many closed bins; `0` runs until the source
    /// ends or a signal arrives. The smoke-test hook.
    pub max_bins: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            source: SourceKind::Replay,
            scenario: "mixed".to_string(),
            seed: 2026,
            speed: 1.0,
            window_ms: 500,
            pcap: None,
            follow: true,
            listen: "127.0.0.1:0".to_string(),
            tenants: 0,
            flow_budget: 0,
            sampler: SamplerSpec::Random { rate: 0.1 },
            rates: vec![0.1],
            runs: 1,
            bin_secs: 60.0,
            top_t: 10,
            topk: Some(TopKSpec::SpaceSaving { capacity: 64 }),
            threads: 1,
            retain_bins: 16,
            output: OutputKind::None,
            output_path: None,
            snapshot_listen: None,
            idle_wait_ms: 1,
            stall_timeout_secs: 30.0,
            stall_polls: DrivePolicy::DEFAULT_STALL_POLLS,
            max_bins: 0,
        }
    }
}

impl ServeConfig {
    /// Loads and parses a config file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ConfigError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }

    /// Parses config text: `key = value` lines, `#` comments, unknown keys
    /// rejected.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut config = ServeConfig::default();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            // Strip trailing comments too (values never contain `#`).
            let trimmed = raw.split('#').next().unwrap_or("").trim();
            if trimmed.is_empty() {
                continue;
            }
            let (key, value) = trimmed.split_once('=').ok_or_else(|| ConfigError::Parse {
                line,
                reason: format!("expected `key = value`, got `{trimmed}`"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            config
                .apply(key, value)
                .map_err(|reason| ConfigError::Parse {
                    line,
                    reason: format!("{key} = {value}: {reason}"),
                })?;
        }
        config.validate()?;
        Ok(config)
    }

    fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "source" => {
                self.source = match value {
                    "replay" => SourceKind::Replay,
                    "tail" => SourceKind::Tail,
                    "ndjson" => SourceKind::Ndjson,
                    "socket" => SourceKind::Socket,
                    other => return Err(format!("unknown source `{other}`")),
                }
            }
            "scenario" => self.scenario = value.to_string(),
            "seed" => self.seed = parse(value)?,
            "speed" => self.speed = parse(value)?,
            "window_ms" => self.window_ms = parse(value)?,
            "pcap" => self.pcap = Some(PathBuf::from(value)),
            "follow" => self.follow = parse_bool(value)?,
            "listen" => self.listen = value.to_string(),
            "tenants" => self.tenants = parse(value)?,
            "flow_budget" => self.flow_budget = parse(value)?,
            "sampler" => self.sampler = parse_sampler(value)?,
            "rate" => self.rates = vec![parse(value)?],
            "rates" => {
                self.rates = value
                    .split(',')
                    .map(|r| parse(r.trim()))
                    .collect::<Result<Vec<f64>, _>>()?;
                if self.rates.is_empty() {
                    return Err("at least one rate".to_string());
                }
            }
            "runs" => self.runs = parse(value)?,
            "bin_secs" => self.bin_secs = parse(value)?,
            "top_t" => self.top_t = parse(value)?,
            "topk" => self.topk = parse_topk(value)?,
            "threads" => self.threads = parse(value)?,
            "retain_bins" => self.retain_bins = parse(value)?,
            "output" => {
                self.output = match value {
                    "none" => OutputKind::None,
                    "ndjson" => OutputKind::Ndjson,
                    "csv" => OutputKind::Csv,
                    other => return Err(format!("unknown output `{other}`")),
                }
            }
            "output_path" => {
                self.output_path = (value != "-").then(|| PathBuf::from(value));
            }
            "snapshot_listen" => self.snapshot_listen = Some(value.to_string()),
            "idle_wait_ms" => self.idle_wait_ms = parse(value)?,
            "stall_timeout_secs" => self.stall_timeout_secs = parse(value)?,
            "stall_polls" => self.stall_polls = parse(value)?,
            "max_bins" => self.max_bins = parse(value)?,
            other => return Err(format!("unknown key `{other}`")),
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let fail = |reason: &str| {
            Err(ConfigError::Parse {
                line: 0,
                reason: reason.to_string(),
            })
        };
        if self.source == SourceKind::Tail && self.pcap.is_none() {
            return fail("source = tail requires `pcap = <path>`");
        }
        if self.tenants > 0 && matches!(self.source, SourceKind::Tail | SourceKind::Socket) {
            return fail("fleet mode (`tenants > 0`) supports source = replay or ndjson");
        }
        // Fleet replay runs the fleet scenario; the catalog `scenario` key
        // only applies to the single-monitor daemon.
        if self.tenants == 0
            && self.source == SourceKind::Replay
            && flowrank_trace::Workload::by_name(&self.scenario).is_none()
        {
            return Err(ConfigError::Parse {
                line: 0,
                reason: format!(
                    "unknown scenario `{}` (known: {})",
                    self.scenario,
                    flowrank_trace::Workload::catalog()
                        .iter()
                        .map(|w| w.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        if self.bin_secs <= 0.0 || self.bin_secs.is_nan() {
            return fail("bin_secs must be positive");
        }
        if self.runs == 0 {
            return fail("runs must be at least 1");
        }
        Ok(())
    }

    /// The drive policy the config describes: serving always skips
    /// malformed records (counted, budget-bounded) — a daemon must not die
    /// to one bad line on a live feed.
    pub fn drive_policy(&self) -> DrivePolicy {
        DrivePolicy::resilient()
            .stall_polls(self.stall_polls)
            .stall_timeout(Duration::from_secs_f64(self.stall_timeout_secs.max(0.0)))
            .idle_wait(Duration::from_millis(self.idle_wait_ms))
    }

    /// The monitor template the config describes — also the per-tenant
    /// template in fleet mode (where the fleet overrides `threads` to 1
    /// per tenant and parallelises across tenants instead).
    pub fn monitor_builder(&self) -> flowrank_monitor::MonitorBuilder {
        let mut builder = Monitor::builder()
            .sampler(self.sampler)
            .rates(&self.rates)
            .runs(self.runs)
            .bin_length(Timestamp::from_secs_f64(self.bin_secs))
            .top_t(self.top_t)
            .seed(self.seed)
            .threads(self.threads.max(1))
            .drive_policy(self.drive_policy());
        if let Some(topk) = &self.topk {
            builder = builder.topk(*topk);
        }
        builder
    }

    /// Builds the monitor the config describes.
    pub fn monitor(&self) -> Monitor {
        self.monitor_builder().build()
    }

    /// A fully commented example config (printed by
    /// `flowrank-serve --example-config`).
    pub fn example() -> &'static str {
        "\
# flowrank-serve configuration. One `key = value` per line, `#` comments.

# Source: replay (paced scenario), tail (growing pcap), ndjson (stdin),
# socket (live TCP ndjson listener).
source = replay
scenario = mixed        # heavy-tail | flash-crowd | ddos-flood | port-scan | rank-churn | mixed
seed = 2026
speed = 60              # trace-seconds per wall-second; 0 = as fast as possible
window_ms = 500         # replay chunk granularity

# source = tail
# pcap = capture.pcap
# follow = true

# source = socket
# listen = 127.0.0.1:0  # port 0 picks a free port (printed on startup)

# Fleet mode: host N tenant monitors behind one slab (flowrank-fleet).
# Source must be replay (fleet scenario) or ndjson (tenant-tagged records:
# each line may carry an extra `tenant` field).
# tenants = 1000
# flow_budget = 4096    # per-tenant flow-table cap; 0 = unbounded

# Monitor shape.
sampler = random        # random | periodic | stratified | flow | smart:<threshold>
rates = 0.01, 0.1
runs = 3
bin_secs = 60
top_t = 10
topk = space-saving:64  # none | exact | sorted-list:<cap> | space-saving:<cap>
threads = 1

# Serving state.
retain_bins = 16
snapshot_listen = 127.0.0.1:0   # port 0 picks a free port; omit to disable
output = none           # none | ndjson | csv (per-bin report stream)
# output_path = -       # `-` = stdout

# Liveness.
idle_wait_ms = 1
stall_timeout_secs = 30 # abort if the source delivers nothing for this long
stall_polls = 8
max_bins = 0            # >0: exit cleanly after N bins (smoke tests)
"
    }
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String>
where
    T::Err: fmt::Display,
{
    value.parse().map_err(|e| format!("{e}"))
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(format!("expected true/false, got `{other}`")),
    }
}

fn parse_sampler(value: &str) -> Result<SamplerSpec, String> {
    // The rate parameter is a placeholder: the monitor retargets the
    // template across the configured rate grid.
    let (name, arg) = match value.split_once(':') {
        Some((name, arg)) => (name.trim(), Some(arg.trim())),
        None => (value, None),
    };
    match (name, arg) {
        ("random", None) => Ok(SamplerSpec::Random { rate: 0.1 }),
        ("periodic", None) => Ok(SamplerSpec::Periodic {
            rate: 0.1,
            random_phase: true,
        }),
        ("stratified", None) => Ok(SamplerSpec::Stratified { rate: 0.1 }),
        ("flow", None) => Ok(SamplerSpec::Flow { rate: 0.1 }),
        ("smart", Some(threshold)) => Ok(SamplerSpec::Smart {
            threshold: parse(threshold)?,
        }),
        ("smart", None) => Err("smart needs a threshold: `smart:1000`".to_string()),
        (other, _) => Err(format!("unknown sampler `{other}`")),
    }
}

fn parse_topk(value: &str) -> Result<Option<TopKSpec>, String> {
    let (name, arg) = match value.split_once(':') {
        Some((name, arg)) => (name.trim(), Some(arg.trim())),
        None => (value, None),
    };
    let capacity = |arg: Option<&str>| -> Result<usize, String> { arg.map_or(Ok(64), parse) };
    match name {
        "none" => Ok(None),
        "exact" => Ok(Some(TopKSpec::Exact)),
        "sorted-list" => Ok(Some(TopKSpec::SortedList {
            capacity: capacity(arg)?,
        })),
        "space-saving" => Ok(Some(TopKSpec::SpaceSaving {
            capacity: capacity(arg)?,
        })),
        other => Err(format!("unknown topk backend `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_through_the_example() {
        let config = ServeConfig::parse(ServeConfig::example()).expect("example parses");
        assert_eq!(config.source, SourceKind::Replay);
        assert_eq!(config.scenario, "mixed");
        assert_eq!(config.rates, vec![0.01, 0.1]);
        assert_eq!(config.runs, 3);
        assert_eq!(config.topk, Some(TopKSpec::SpaceSaving { capacity: 64 }));
        assert_eq!(config.snapshot_listen.as_deref(), Some("127.0.0.1:0"));
    }

    #[test]
    fn unknown_keys_and_bad_values_carry_line_numbers() {
        let err = ServeConfig::parse("seed = 1\nnonsense = 2\n").unwrap_err();
        match err {
            ConfigError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("unknown key"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = ServeConfig::parse("seed = banana\n").unwrap_err();
        assert!(matches!(err, ConfigError::Parse { line: 1, .. }));
    }

    #[test]
    fn tail_source_requires_a_capture_path() {
        let err = ServeConfig::parse("source = tail\n").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("pcap"), "{text}");
        assert!(ServeConfig::parse("source = tail\npcap = x.pcap\n").is_ok());
    }

    #[test]
    fn unknown_scenarios_list_the_catalog() {
        let err = ServeConfig::parse("scenario = nope\n").unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("mixed") && text.contains("port-scan"),
            "{text}"
        );
    }

    #[test]
    fn policy_reflects_the_liveness_keys() {
        let config =
            ServeConfig::parse("idle_wait_ms = 7\nstall_timeout_secs = 2.5\nstall_polls = 11\n")
                .expect("parses");
        let policy = config.drive_policy();
        assert_eq!(policy.idle_wait, Duration::from_millis(7));
        assert_eq!(policy.stall_timeout, Duration::from_secs_f64(2.5));
        assert_eq!(policy.stall_polls, 11);
        assert!(policy.skip_malformed, "serving skips malformed records");
    }
}

//! Fleet hosting: one config file, thousands of monitors.
//!
//! With `tenants = N` in the config, the daemon hosts a
//! [`Fleet`] instead of a single monitor. Two
//! sources work fleet-wide:
//!
//! * `source = replay` — the synthetic fleet scenario
//!   ([`flowrank_trace::FleetScenario`]): N tenants with heterogeneous
//!   catalog mixes and diurnal envelopes, driven window by window.
//! * `source = ndjson` — tenant-tagged records on stdin: each line is the
//!   usual ndjson record with an extra `"tenant": <id>` field (records
//!   without one belong to tenant 0). Lines are parsed **once**, tagged,
//!   and demultiplexed by the fleet — the one-decode-pass path end to end.
//!
//! Every pushed window refreshes the snapshot endpoint with a fleet-wide
//! JSON state: totals plus the busiest tenants, so a poller watching a
//! thousand-tenant daemon sees where the traffic and the budget evictions
//! are concentrating.

use std::fmt::Write as _;
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flowrank_fleet::{Fleet, FleetBuilder, FleetSink, TenantStats};
use flowrank_monitor::{ndjson_tenant, parse_ndjson_record, BinReport};
use flowrank_net::{TaggedBatch, TenantId, Timestamp};
use flowrank_trace::FleetScenario;

use crate::config::{ServeConfig, SourceKind};
use crate::snapshot::SnapshotPublisher;

/// Records accumulated per tagged push on the stdin record path.
const RECORDS_PER_PUSH: usize = 512;

/// The machine-readable outcome of a fleet run (rendered into the daemon's
/// final line).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetFinal {
    /// Tenants hosted.
    pub tenants: usize,
    /// Tagged windows pushed.
    pub windows: u64,
    /// Packets demultiplexed.
    pub packets: u64,
    /// Bins closed across all tenants.
    pub reports: u64,
    /// Budget evictions across all tenants.
    pub evictions: u64,
    /// Malformed stdin lines skipped (record path only).
    pub malformed_skipped: u64,
    /// Records whose tenant id was outside the slab (record path only).
    pub unknown_tenant_skipped: u64,
}

/// Counts delivered bins; the fleet itself keeps per-tenant statistics.
#[derive(Debug, Default)]
struct Totals {
    reports: u64,
    evictions: u64,
}

impl FleetSink for Totals {
    fn accept(&mut self, _tenant: TenantId, report: &BinReport) {
        self.reports += 1;
        self.evictions += report.evictions;
    }
}

/// Builds the fleet the config describes: the single-monitor template with
/// the daemon's drive policy, tenants × that, fleet-level threads, and the
/// per-tenant flow budget when configured.
pub fn build_fleet(config: &ServeConfig) -> Fleet {
    let mut builder = FleetBuilder::new(config.tenants)
        .monitor(config.monitor_builder())
        .seed(config.seed)
        .threads(config.threads.max(1));
    if config.flow_budget > 0 {
        builder = builder.flow_budget(config.flow_budget);
    }
    builder.build()
}

/// Runs the daemon in fleet mode until the source ends, the stop flag
/// rises, or `max_bins` bins have closed fleet-wide.
pub fn run_fleet(
    config: &ServeConfig,
    stop: Arc<AtomicBool>,
    publisher: &SnapshotPublisher,
) -> Result<FleetFinal, String> {
    let mut fleet = build_fleet(config);
    let mut totals = Totals::default();
    let mut scratch = String::new();
    match config.source {
        SourceKind::Replay => {
            let scenario = FleetScenario::new(config.tenants);
            let mut stream = if config.window_ms > 0 {
                scenario.stream_with_window(
                    config.seed,
                    Timestamp::from_secs_f64(config.window_ms as f64 / 1000.0),
                )
            } else {
                scenario.stream(config.seed)
            };
            while let Some(batch) = stream.next_window() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                fleet.push_tagged(batch, &mut totals);
                publish(&fleet, &totals, 0, publisher, &mut scratch);
                if config.max_bins > 0 && totals.reports >= config.max_bins {
                    break;
                }
            }
            fleet.finish(&mut totals);
            publish(&fleet, &totals, 0, publisher, &mut scratch);
            Ok(finalize(&fleet, &totals, 0, 0))
        }
        SourceKind::Ndjson => {
            let stdin = std::io::stdin();
            let (malformed, unknown) = drive_records(
                &mut fleet,
                stdin.lock(),
                &mut totals,
                config,
                &stop,
                publisher,
                &mut scratch,
            )?;
            Ok(finalize(&fleet, &totals, malformed, unknown))
        }
        SourceKind::Tail | SourceKind::Socket => {
            Err("fleet mode supports source = replay or ndjson".to_string())
        }
    }
}

/// The tenant-tagged record path: parse each stdin line once
/// ([`parse_ndjson_record`] + [`ndjson_tenant`]), accumulate a
/// [`TaggedBatch`], and push it through the fleet's one demux pass.
fn drive_records<R: BufRead>(
    fleet: &mut Fleet,
    mut reader: R,
    totals: &mut Totals,
    config: &ServeConfig,
    stop: &AtomicBool,
    publisher: &SnapshotPublisher,
    scratch: &mut String,
) -> Result<(u64, u64), String> {
    let tenants = fleet.tenant_count() as u32;
    let mut malformed = 0u64;
    let mut unknown = 0u64;
    let mut line = String::new();
    let mut tagged = TaggedBatch::new();
    loop {
        line.clear();
        let eof = reader
            .read_line(&mut line)
            .map_err(|e| format!("stdin: {e}"))?
            == 0;
        if !eof && !line.trim().is_empty() {
            // One decode pass: tenant tag and record come from the same
            // parse of the same line; the fleet only copies columns.
            match (ndjson_tenant(&line), parse_ndjson_record(&line)) {
                (Ok(tenant), Ok(record)) => {
                    let tenant = tenant.unwrap_or(0);
                    if tenant >= tenants {
                        unknown += 1;
                    } else {
                        tagged.push_record(TenantId(tenant), &record);
                    }
                }
                _ => malformed += 1,
            }
        }
        let flush = eof || tagged.len() >= RECORDS_PER_PUSH;
        if flush && !tagged.is_empty() {
            fleet
                .try_push_tagged(&tagged, totals)
                .map_err(|e| e.to_string())?;
            tagged.clear();
            publish(fleet, totals, malformed, publisher, scratch);
        }
        let done = eof
            || stop.load(Ordering::Acquire)
            || (config.max_bins > 0 && totals.reports >= config.max_bins);
        if done {
            fleet.finish(totals);
            publish(fleet, totals, malformed, publisher, scratch);
            return Ok((malformed, unknown));
        }
    }
}

fn finalize(fleet: &Fleet, totals: &Totals, malformed: u64, unknown: u64) -> FleetFinal {
    let mut summary = FleetFinal {
        tenants: fleet.tenant_count(),
        windows: fleet.windows(),
        reports: totals.reports,
        evictions: totals.evictions,
        malformed_skipped: malformed,
        unknown_tenant_skipped: unknown,
        ..FleetFinal::default()
    };
    for stats in fleet.tenant_stats() {
        summary.packets += stats.packets;
    }
    summary
}

/// Renders and publishes the fleet snapshot: totals plus the busiest
/// tenants by packet count.
fn publish(
    fleet: &Fleet,
    totals: &Totals,
    malformed: u64,
    publisher: &SnapshotPublisher,
    scratch: &mut String,
) {
    let mut stats: Vec<TenantStats> = fleet.tenant_stats().collect();
    let packets: u64 = stats.iter().map(|s| s.packets).sum();
    stats.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.tenant.cmp(&b.tenant)));
    stats.truncate(5);
    scratch.clear();
    let _ = write!(
        scratch,
        "{{\"fleet\":{{\"tenants\":{},\"windows\":{},\"packets\":{packets},\"reports\":{},\"evictions\":{},\"malformed_skipped\":{malformed},\"busiest\":[",
        fleet.tenant_count(),
        fleet.windows(),
        totals.reports,
        totals.evictions,
    );
    for (i, tenant) in stats.iter().enumerate() {
        if i > 0 {
            scratch.push(',');
        }
        let _ = write!(
            scratch,
            "{{\"tenant\":{},\"packets\":{},\"reports\":{},\"evictions\":{}}}",
            tenant.tenant.0, tenant.packets, tenant.reports, tenant.evictions
        );
    }
    scratch.push_str("]}}");
    publisher.publish(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet_config(extra: &str) -> ServeConfig {
        ServeConfig::parse(&format!(
            "tenants = 3\nrates = 0.2\nruns = 1\nwindow_ms = 0\n{extra}"
        ))
        .expect("config parses")
    }

    #[test]
    fn replay_fleet_runs_to_completion_and_publishes() {
        let config = fleet_config("");
        let publisher = SnapshotPublisher::new();
        let stop = Arc::new(AtomicBool::new(false));
        let summary = run_fleet(&config, stop, &publisher).expect("fleet run");
        assert_eq!(summary.tenants, 3);
        assert!(summary.packets > 0 && summary.reports > 0, "{summary:?}");
        let poll = publisher.render_poll();
        assert!(poll.contains("\"fleet\":{\"tenants\":3"), "{poll}");
        assert!(poll.contains("\"busiest\":[{\"tenant\":"), "{poll}");
    }

    #[test]
    fn record_path_tags_skips_and_demuxes_in_one_pass() {
        let config = fleet_config("source = ndjson\n");
        let record = |ts: f64, tenant: &str| {
            format!(
                "{{\"ts\":{ts},\"src\":\"10.0.0.1\",\"dst\":\"10.0.0.2\",\"sport\":1,\"dport\":2,\"len\":99,\"proto\":\"udp\"{tenant}}}\n"
            )
        };
        let input = format!(
            "{}{}{}not json\n{}",
            record(1.0, ",\"tenant\":1"),
            record(2.0, ""),              // untagged → tenant 0
            record(3.0, ",\"tenant\":9"), // outside the slab → skipped
            record(4.0, ",\"tenant\":2"),
        );
        let mut fleet = build_fleet(&config);
        let publisher = SnapshotPublisher::new();
        let mut totals = Totals::default();
        let mut scratch = String::new();
        let stop = AtomicBool::new(false);
        let (malformed, unknown) = drive_records(
            &mut fleet,
            input.as_bytes(),
            &mut totals,
            &config,
            &stop,
            &publisher,
            &mut scratch,
        )
        .expect("record drive");
        assert_eq!(malformed, 1);
        assert_eq!(unknown, 1);
        let per_tenant: Vec<u64> = fleet.tenant_stats().map(|s| s.packets).collect();
        assert_eq!(per_tenant, vec![1, 1, 1]);
        assert!(totals.reports >= 3, "each tenant closes its final bin");
    }

    #[test]
    fn fleet_mode_rejects_sources_without_a_tenant_path() {
        // The config layer is the gate: tail and socket are single-monitor
        // sources, so fleet configs naming them never validate.
        for source in ["source = tail\npcap = x.pcap\n", "source = socket\n"] {
            let error = ServeConfig::parse(&format!("tenants = 2\n{source}"))
                .expect_err("single-monitor source in fleet mode");
            assert!(error.to_string().contains("replay or ndjson"), "{error}");
        }
    }

    #[test]
    fn max_bins_bounds_a_fleet_replay() {
        let config = fleet_config("max_bins = 2\n");
        let publisher = SnapshotPublisher::new();
        let stop = Arc::new(AtomicBool::new(false));
        let summary = run_fleet(&config, stop, &publisher).expect("fleet run");
        // The final finish() still closes every tenant's last bin, so the
        // bound is `max_bins` pushed-window bins plus at most one per
        // tenant.
        assert!(summary.reports >= 2, "{summary:?}");
        assert!(summary.windows < 200, "stopped early: {summary:?}");
    }
}

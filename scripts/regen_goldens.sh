#!/usr/bin/env bash
# Regenerates the committed golden digests:
#   tests/goldens/scenario_conformance.txt    (conformance matrix)
#   tests/goldens/controller_convergence.txt  (closed-loop decision traces)
#   tests/goldens/fleet_eviction.txt          (budgeted fleet eviction digests)
#
# Golden digests pin the *results* of the scenario × sampler × top-k
# conformance matrix and of the rate controllers' per-bin decision traces,
# so they must only ever change together with the code change that
# intentionally moved them (e.g. a new RNG stream, a new matrix cell, a
# retuned controller). To keep every regeneration reviewable, this script
# refuses to run on a dirty working tree: regenerate on a clean checkout of
# your change, and the golden diff lands in the same commit series as the
# code that caused it.
#
# Usage: scripts/regen_goldens.sh

set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "$(git status --porcelain)" ]; then
    echo "error: working tree is dirty — commit or stash first so the golden" >&2
    echo "       regeneration is its own reviewable change" >&2
    git status --short >&2
    exit 1
fi

REGEN_GOLDENS=1 cargo test -p flowrank-tests --test scenario_conformance -- --nocapture
REGEN_GOLDENS=1 cargo test --release -p flowrank-tests --test controller_convergence -- --nocapture
REGEN_GOLDENS=1 cargo test -p flowrank-tests --test fleet_conformance -- --nocapture

if git diff --quiet -- tests/goldens/; then
    echo "goldens unchanged — the matrix still digests to the committed values"
else
    echo "goldens updated:"
    git --no-pager diff --stat -- tests/goldens/
    echo "review the diff and commit it together with the change that moved it"
fi

#!/usr/bin/env bash
# Smoke-tests the flowrank-serve daemon end to end, the three things unit
# tests cannot pin from inside the process:
#
#   1. a finite serving run (unpaced replay, bin-limited) exits 0 and
#      prints the machine-readable final line;
#   2. the snapshot endpoint answers HTTP polls while the daemon runs, and
#      SIGINT produces a clean exit with the final line still printed
#      (graceful shutdown through the StopGate path);
#   3. the ndjson stdin source ingests records and skips malformed lines.
#
# Usage: scripts/serve_smoke.sh   (CI runs it after the test suite)
#
# Needs only bash (/dev/tcp for the poll) and the repo toolchain.

set -euo pipefail
cd "$(dirname "$0")/.."

# The snapshot endpoint answers one request per connection and closes; a
# close racing our request write must surface as a retryable write error,
# not kill the whole script via bash's fatal default SIGPIPE.
trap '' PIPE

cargo build --release -p flowrank-serve
serve=./target/release/flowrank-serve

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; kill %% 2>/dev/null || true' EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    exit 1
}

# --- Leg 1: finite unpaced replay ------------------------------------------
cat > "$workdir/finite.conf" <<'EOF'
source = replay
scenario = mixed
seed = 2026
speed = 0
window_ms = 500
rates = 0.1
runs = 2
bin_secs = 60
top_t = 10
topk = space-saving:64
retain_bins = 4
max_bins = 3
EOF
final=$("$serve" --config "$workdir/finite.conf" 2>"$workdir/finite.err")
case "$final" in
    '{"serve":"final"'*'"packets":'*) ;;
    *) fail "finite run: unexpected final line: $final" ;;
esac
packets=$(printf '%s' "$final" | sed -n 's/.*"packets":\([0-9]*\).*/\1/p')
[ "${packets:-0}" -gt 0 ] || fail "finite run processed no packets: $final"
echo "serve_smoke: finite replay ok ($packets packets)"

# --- Leg 2: snapshot polls + SIGINT ----------------------------------------
# speed 10 stretches the ~180 trace-second replay to ~18 s of wall time, so
# the poll and the SIGINT both land while the drive is still running; 5 s
# bins close every 0.5 s of wall time, so the snapshot has state by poll
# time.
cat > "$workdir/daemon.conf" <<'EOF'
source = replay
scenario = mixed
seed = 2026
speed = 10
window_ms = 500
rates = 0.1
runs = 1
bin_secs = 5
top_t = 10
retain_bins = 4
snapshot_listen = 127.0.0.1:0
EOF
"$serve" --config "$workdir/daemon.conf" > "$workdir/daemon.out" 2> "$workdir/daemon.err" &
daemon=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's#.*snapshot endpoint on http://127\.0\.0\.1:\([0-9]*\)/.*#\1#p' "$workdir/daemon.err")
    [ -n "$port" ] && break
    kill -0 "$daemon" 2>/dev/null || fail "daemon died early: $(cat "$workdir/daemon.err")"
    sleep 0.1
done
[ -n "$port" ] || fail "daemon never announced the snapshot endpoint"

# Let a few bins close, then poll (with retries: a one-shot connection can
# race the server-side close).
sleep 2
poll=""
for _ in 1 2 3 4 5; do
    # The subshell contains a failed connect (a redirection error on exec
    # is fatal to the shell it happens in) and any write/read race.
    poll=$( { exec 3<>"/dev/tcp/127.0.0.1/$port" \
        && printf 'GET / HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3 \
        && timeout 5 cat <&3; } 2>/dev/null ) || true
    [ -n "$poll" ] && break
    kill -0 "$daemon" 2>/dev/null || fail "daemon died before the poll: $(cat "$workdir/daemon.out")"
    sleep 0.3
done
case "$poll" in
    *'"age_s":'*'"bins_seen"'*) ;;
    *) fail "snapshot poll missing age_s watchdog / published state: $poll" ;;
esac
kill -0 "$daemon" 2>/dev/null || fail "daemon ended before SIGINT could be exercised"
echo "serve_smoke: snapshot poll ok (port $port)"

kill -INT "$daemon"
rc=0
wait "$daemon" || rc=$?
[ "$rc" -eq 0 ] || fail "SIGINT exit code $rc (want 0): $(cat "$workdir/daemon.err")"
grep -q '"serve":"final"' "$workdir/daemon.out" \
    || fail "no final line after SIGINT: $(cat "$workdir/daemon.out")"
echo "serve_smoke: SIGINT shutdown ok"

# --- Leg 3: ndjson stdin source --------------------------------------------
cat > "$workdir/ndjson.conf" <<'EOF'
source = ndjson
rates = 0.5
runs = 1
bin_secs = 10
top_t = 5
topk = exact
retain_bins = 4
EOF
{
    for i in $(seq 0 99); do
        printf '{"ts": %s.%02d, "src": "10.0.0.%d", "sport": 1234, "dst": "100.64.0.9", "dport": 443, "proto": "udp", "len": 900}\n' \
            $((i / 10)) $((i % 10 * 10)) $((i % 8 + 1))
    done
    echo 'not json'
} > "$workdir/feed.ndjson"
final=$("$serve" --config "$workdir/ndjson.conf" < "$workdir/feed.ndjson" 2>/dev/null)
case "$final" in
    *'"packets":100'*'"malformed_skipped":1'*) ;;
    *) fail "ndjson run: unexpected final line: $final" ;;
esac
echo "serve_smoke: ndjson ingest ok"

echo "serve_smoke: all legs passed"

#!/usr/bin/env bash
# Records the criterion throughput numbers in BENCH_throughput.json (the
# latest snapshot, overwritten every run) and appends the same run — keyed
# by git SHA and timestamp — to BENCH_trajectory.ndjson, so the perf
# trajectory is machine-readable PR over PR, not just the newest point.
#
# Usage: scripts/bench_snapshot.sh
#
# Runs the flowrank-bench `throughput`, `scenario_throughput` and
# `controller_convergence` benches with BENCH_JSON set (the in-tree
# criterion shim appends one JSON line per benchmark; new bench cases are
# picked up automatically) and assembles the lines, then adds the
# multi-core leg: the `scaling` bench swept over `--threads {1 2 4}`
# (override the sweep with BENCH_THREAD_SWEEP="1 2 4 8"). Every result
# line carries a `threads` field — 1 for the single-threaded benches, the
# swept worker-pool width for the scaling leg — so the scaling curve of
# the pipelined worker runtime is machine-readable PR over PR in both
# BENCH_throughput.json and BENCH_trajectory.ndjson. Extract it with e.g.
# `jq '.results[] | select(.group == "scaling")
#      | {name, threads, melem_per_s}' BENCH_throughput.json`.
#
# Compare two snapshots with e.g.
# `jq '.results[] | {name, mean_ns}' BENCH_throughput.json`, or plot one
# bench across PRs with
# `jq -c '{sha: .git_sha, r: (.results[] | select(.name == "pcap_decode"))}'
# BENCH_trajectory.ndjson`. The scenario group shows how throughput varies
# with traffic shape (heavy-tail, flash-crowd, ddos-flood, port-scan,
# rank-churn, mixed), not just with the one Sprint-like mix; the
# controller group prices the closed-loop path per controller discipline.
# The throughput group's `drive_faulty_source` leg drives the same grid
# through the fallible `try_drive` loop under a 1% seeded fault rate
# (malformed records + idle polls, resilient policy), so the recovery
# path's overhead on the hot loop is tracked PR over PR next to its
# fault-free twin `drive_end_to_end`. The serve group's `serve_replay_mixed`
# leg runs the release `flowrank-serve` daemon end to end (unpaced replay →
# monitor → rolling snapshot) and records its whole-daemon throughput.
#
# Each record carries `test_threads` (set BENCH_THREADS to label runs that
# pinned a different libtest/bench parallelism; defaults to 1, the bench
# box's single-CPU configuration) alongside host_cpus, so snapshots from
# differently-parallel runs are distinguishable in the trajectory. Note the
# distinction: `test_threads` labels the harness parallelism of the whole
# run; the per-result `threads` field is the monitor worker-pool width a
# scaling result was measured at.

set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench throughput
BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench scenario_throughput
BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench controller_convergence

# Multi-core leg: the same monitor grid at each worker-pool width. On a
# single-CPU box the >1 legs still run (the runtime is always available);
# their numbers record the no-parallelism floor, which is itself useful —
# the threads field keeps every point attributable.
for t in ${BENCH_THREAD_SWEEP:-1 2 4}; do
    BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench scaling -- --threads "$t"
done

# Multi-tenant leg: the fleet scenario holds aggregate load constant while
# the tenant count grows (override with BENCH_TENANT_SWEEP="1 10 100"), so
# flat `melem_per_s` across the sweep demonstrates per-tenant overhead
# shrinking as 1/N. Each invocation also appends a `fleet_peak_rss_*` line
# (VmHWM of the bench process), keeping the memory axis of the per-tenant
# budget contract in the same trajectory. Bench names carry the tenant
# count: extract the sweep with e.g.
# `jq '.results[] | select(.group == "fleet_scaling")
#      | {name, melem_per_s, peak_rss_kib}' BENCH_throughput.json`.
for n in ${BENCH_TENANT_SWEEP:-1 100 1000}; do
    BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench fleet_scaling -- --tenants "$n"
done

# Serving leg: the flowrank-serve daemon end to end — unpaced scenario
# replay through the monitor into the rolling-snapshot sink, the whole
# daemon path minus wall-clock pacing. The binary's final line is
# machine-readable; reshape it into a bench result so serving throughput
# rides the same trajectory (group "serve", melem_per_s = Mpkt/s).
cargo build --release -p flowrank-serve
serve_conf=$(mktemp)
cat > "$serve_conf" <<'EOF'
source = replay
scenario = mixed
seed = 2026
speed = 0
window_ms = 500
rates = 0.1
runs = 2
bin_secs = 60
top_t = 10
topk = space-saving:64
retain_bins = 8
EOF
serve_final=$(./target/release/flowrank-serve --config "$serve_conf" 2>/dev/null | tail -n 1)
rm -f "$serve_conf"
serve_elapsed=$(printf '%s' "$serve_final" | sed -n 's/.*"elapsed_s":\([0-9.]*\).*/\1/p')
serve_pps=$(printf '%s' "$serve_final" | sed -n 's/.*"throughput_pps":\([0-9.]*\).*/\1/p')
if [ -z "$serve_elapsed" ] || [ -z "$serve_pps" ]; then
    echo "error: flowrank-serve produced no parseable final line: $serve_final" >&2
    exit 1
fi
awk -v e="$serve_elapsed" -v p="$serve_pps" 'BEGIN {
    printf "{\"group\":\"serve\",\"name\":\"serve_replay_mixed\",\"mean_ns\":%.1f,\"std_ns\":0.0,\"samples\":1,\"melem_per_s\":%.4f}\n", e * 1e9, p / 1e6
}' >> "$tmp"

if [ ! -s "$tmp" ]; then
    echo "error: bench run produced no BENCH_JSON lines" >&2
    exit 1
fi

git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
recorded_at=$(date -u +%FT%TZ)
host_cpus=$(nproc)
test_threads=${BENCH_THREADS:-1}

{
    echo '{'
    echo '  "bench": "throughput",'
    echo "  \"git_sha\": \"$git_sha\","
    echo "  \"recorded_at\": \"$recorded_at\","
    echo "  \"host_cpus\": $host_cpus,"
    echo "  \"test_threads\": $test_threads,"
    echo '  "results": ['
    sed 's/^/    /; $!s/$/,/' "$tmp"
    echo '  ]'
    echo '}'
} > BENCH_throughput.json

{
    printf '{"bench":"throughput","git_sha":"%s","recorded_at":"%s","host_cpus":%s,"test_threads":%s,"results":[' \
        "$git_sha" "$recorded_at" "$host_cpus" "$test_threads"
    paste -sd, "$tmp" | tr -d '\n'
    printf ']}\n'
} >> BENCH_trajectory.ndjson

echo "wrote BENCH_throughput.json ($(grep -c '"name"' BENCH_throughput.json) entries)"
echo "appended to BENCH_trajectory.ndjson ($(wc -l < BENCH_trajectory.ndjson) runs)"

#!/usr/bin/env bash
# Records the criterion throughput numbers in BENCH_throughput.json so the
# perf trajectory is machine-readable PR over PR.
#
# Usage: scripts/bench_snapshot.sh
#
# Runs the flowrank-bench `throughput` bench with BENCH_JSON set (the
# in-tree criterion shim appends one JSON line per benchmark) and assembles
# the lines into a single document at the repo root. Compare two snapshots
# with e.g. `jq '.results[] | {name, mean_ns}' BENCH_throughput.json`.

set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

BENCH_JSON="$tmp" cargo bench -p flowrank-bench --bench throughput

if [ ! -s "$tmp" ]; then
    echo "error: bench run produced no BENCH_JSON lines" >&2
    exit 1
fi

{
    echo '{'
    echo '  "bench": "throughput",'
    echo "  \"recorded_at\": \"$(date -u +%FT%TZ)\","
    echo "  \"host_cpus\": $(nproc),"
    echo '  "results": ['
    sed 's/^/    /; $!s/$/,/' "$tmp"
    echo '  ]'
    echo '}'
} > BENCH_throughput.json

echo "wrote BENCH_throughput.json ($(grep -c '"name"' BENCH_throughput.json) entries)"
